#include "obs/trace_record.hpp"

namespace synran::obs {

void TraceRecorder::on_run_begin(const RunInfo& info) {
  TraceRecord r;
  r.kind = TraceRecordKind::RunBegin;
  r.begin = info;
  sink_->push_back(std::move(r));
}

void TraceRecorder::on_round_begin(const RoundObservation& round) {
  TraceRecord r;
  r.kind = TraceRecordKind::RoundBegin;
  r.round = round;
  sink_->push_back(std::move(r));
}

void TraceRecorder::on_fault_plan(Round round, const FaultPlan& plan) {
  TraceRecord r;
  r.kind = TraceRecordKind::FaultPlan;
  r.plan_round = round;
  r.plan = plan;
  sink_->push_back(std::move(r));
}

void TraceRecorder::on_deliveries(Round round, std::uint64_t delivered) {
  TraceRecord r;
  r.kind = TraceRecordKind::Deliveries;
  r.plan_round = round;
  r.delivered = delivered;
  sink_->push_back(std::move(r));
}

void TraceRecorder::on_round_end(const RoundObservation& round) {
  TraceRecord r;
  r.kind = TraceRecordKind::RoundEnd;
  r.round = round;
  sink_->push_back(std::move(r));
}

void TraceRecorder::on_run_end(const RunObservation& result) {
  TraceRecord r;
  r.kind = TraceRecordKind::RunEnd;
  r.end = result;
  sink_->push_back(std::move(r));
}

void TraceRecorder::on_run_abandoned(const RunAbandoned& failure) {
  TraceRecord r;
  r.kind = TraceRecordKind::RunAbandoned;
  r.abandoned = failure;
  sink_->push_back(std::move(r));
}

void replay(const TraceRecord& record, EngineObserver& to) {
  switch (record.kind) {
    case TraceRecordKind::RunBegin:
      to.on_run_begin(record.begin);
      break;
    case TraceRecordKind::RoundBegin:
      to.on_round_begin(record.round);
      break;
    case TraceRecordKind::FaultPlan:
      to.on_fault_plan(record.plan_round, record.plan);
      break;
    case TraceRecordKind::Deliveries:
      to.on_deliveries(record.plan_round, record.delivered);
      break;
    case TraceRecordKind::RoundEnd:
      to.on_round_end(record.round);
      break;
    case TraceRecordKind::RunEnd:
      to.on_run_end(record.end);
      break;
    case TraceRecordKind::RunAbandoned:
      to.on_run_abandoned(record.abandoned);
      break;
  }
}

void replay(const std::vector<TraceRecord>& records, EngineObserver& to) {
  for (const TraceRecord& r : records) replay(r, to);
}

}  // namespace synran::obs
