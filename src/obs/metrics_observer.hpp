// EngineObserver that folds executions into a MetricsRegistry.
//
// One MetricsObserver can watch many runs (e.g. every rep of a repeated
// experiment); counters accumulate across them, so registry totals are the
// batch totals and the summaries/histograms are per-run distributions.
#pragma once

#include "obs/metrics.hpp"
#include "obs/observer.hpp"

namespace synran::obs {

/// Metric names written by MetricsObserver (all under the engine's view):
///   counters   runs, runs_terminated, runs_agreement, rounds,
///              crashes, messages_delivered
///   histograms crashes_per_round (bounds 0,1,2,4,...,1024)
///   summaries  rounds_to_decision, rounds_to_halt, crashes_total,
///              messages_total  (one sample per terminated run)
class MetricsObserver final : public EngineObserver {
 public:
  MetricsObserver();
  /// Accumulate into an external registry instead of the internal one.
  explicit MetricsObserver(MetricsRegistry& registry);

  void on_run_begin(const RunInfo& info) override;
  void on_round_end(const RoundObservation& round) override;
  void on_run_end(const RunObservation& result) override;

  const MetricsRegistry& metrics() const { return *registry_; }
  MetricsRegistry& metrics() { return *registry_; }

 private:
  void pre_register();

  MetricsRegistry own_;
  MetricsRegistry* registry_;
};

}  // namespace synran::obs
