#include "obs/trace_aggregate.hpp"

namespace synran::obs {

TraceAggregator::TraceAggregator() {
  // Mirror exec::RepeatedRunStats' pre-registered layout exactly, so the
  // snapshot of an aggregated trace is byte-comparable to the batch's own
  // statistics.
  metrics_.summary("rounds_to_decision");
  metrics_.summary("rounds_to_halt");
  metrics_.summary("crashes_used");
  metrics_.summary("messages_delivered");
  metrics_.summary("omissions_used");
  metrics_.summary("messages_omitted");
  metrics_.summary("corruptions_used");
  metrics_.summary("messages_corrupted");
  metrics_.counter("reps");
  metrics_.counter("agreement_failures");
  metrics_.counter("validity_failures");
  metrics_.counter("non_terminated");
  metrics_.counter("decided_one");
  metrics_.counter("reps_quarantined");
}

void TraceAggregator::on_run_begin(const RunInfo& /*info*/) {}

void TraceAggregator::on_round_end(const RoundObservation& /*round*/) {
  ++rounds_;
}

void TraceAggregator::on_run_end(const RunObservation& res) {
  ++runs_;
  // Same fold as RepeatedRunStats::add, minus validity (not recorded in
  // traces; the counter stays at its registered zero).
  metrics_.counter("reps").inc();
  if (!res.terminated) {
    metrics_.counter("non_terminated").inc();
  } else {
    metrics_.summary("rounds_to_decision")
        .add(static_cast<double>(res.rounds_to_decision));
    metrics_.summary("rounds_to_halt")
        .add(static_cast<double>(res.rounds_to_halt));
  }
  metrics_.summary("crashes_used").add(static_cast<double>(res.crashes_total));
  metrics_.summary("messages_delivered")
      .add(static_cast<double>(res.messages_delivered));
  metrics_.summary("omissions_used")
      .add(static_cast<double>(res.omissions_total));
  metrics_.summary("messages_omitted")
      .add(static_cast<double>(res.messages_omitted));
  metrics_.summary("corruptions_used")
      .add(static_cast<double>(res.corruptions_total));
  metrics_.summary("messages_corrupted")
      .add(static_cast<double>(res.messages_corrupted));
  if (res.has_decision && !res.agreement)
    metrics_.counter("agreement_failures").inc();
  if (res.agreement && res.decision == 1)
    metrics_.counter("decided_one").inc();
}

void TraceAggregator::on_run_abandoned(const RunAbandoned& /*failure*/) {
  ++abandoned_;
  // Additive: registered on first sight so clean traces snapshot exactly
  // like RepeatedRunStats (which has no such counter).
  metrics_.counter("runs_abandoned").inc();
}

void TraceAggregator::add(const TraceRecord& record) {
  switch (record.kind) {
    case TraceRecordKind::RunBegin:
      on_run_begin(record.begin);
      break;
    case TraceRecordKind::RoundEnd:
      on_round_end(record.round);
      break;
    case TraceRecordKind::RunEnd:
      on_run_end(record.end);
      break;
    case TraceRecordKind::RunAbandoned:
      on_run_abandoned(record.abandoned);
      break;
    case TraceRecordKind::RoundBegin:
    case TraceRecordKind::FaultPlan:
    case TraceRecordKind::Deliveries:
      break;
  }
}

}  // namespace synran::obs
