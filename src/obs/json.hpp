// Minimal deterministic JSON document model for the observability layer.
//
// Everything the obs subsystem exports — JSONL trace events, metrics
// snapshots, BENCH_*.json reports — flows through this one value type so the
// serialization rules live in a single place: object keys keep insertion
// order (no hashing, no locale), doubles render with round-trip precision,
// and the writer emits no whitespace, which makes seeded outputs
// byte-identical across runs. The parser accepts standard JSON (objects,
// arrays, strings with escapes, numbers, booleans, null) and exists so tests
// and the schema-check tool can round-trip what the writers emit.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace synran::obs {

/// A JSON value. Integers are kept distinct from doubles so counters
/// serialize exactly (no 1e+06 for a message count).
class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  /// Insertion-ordered key/value list: deterministic output, duplicate keys
  /// rejected by set().
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}
  JsonValue(bool b) : value_(b) {}
  JsonValue(std::int64_t i) : value_(i) {}
  JsonValue(std::uint64_t u) : value_(static_cast<std::int64_t>(u)) {}
  JsonValue(int i) : value_(static_cast<std::int64_t>(i)) {}
  JsonValue(unsigned u) : value_(static_cast<std::int64_t>(u)) {}
  JsonValue(double d) : value_(d) {}
  JsonValue(std::string s) : value_(std::move(s)) {}
  JsonValue(const char* s) : value_(std::string(s)) {}
  JsonValue(Array a) : value_(std::move(a)) {}
  JsonValue(Object o) : value_(std::move(o)) {}

  static JsonValue object() { return JsonValue(Object{}); }
  static JsonValue array() { return JsonValue(Array{}); }

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(value_); }
  bool is_double() const { return std::holds_alternative<double>(value_); }
  /// Any JSON number (integer-typed or not).
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }
  bool is_object() const { return std::holds_alternative<Object>(value_); }

  bool as_bool() const { return std::get<bool>(value_); }
  std::int64_t as_int() const { return std::get<std::int64_t>(value_); }
  double as_double() const {
    return is_int() ? static_cast<double>(as_int()) : std::get<double>(value_);
  }
  const std::string& as_string() const { return std::get<std::string>(value_); }
  const Array& as_array() const { return std::get<Array>(value_); }
  const Object& as_object() const { return std::get<Object>(value_); }

  /// Appends `key: value` to an object; throws unless this is an object and
  /// the key is new. Returns *this for chaining.
  JsonValue& set(std::string key, JsonValue value);
  /// Appends to an array; throws unless this is an array.
  JsonValue& push(JsonValue value);

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  /// Compact serialization (no whitespace), deterministic key order.
  std::string dump() const;

  /// Parses one JSON document. Returns nullopt on any syntax error or
  /// trailing garbage; `error` (optional) receives a description.
  static std::optional<JsonValue> parse(std::string_view text,
                                        std::string* error = nullptr);

 private:
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array,
               Object>
      value_;
};

/// Escapes a string for embedding in JSON output (quotes not included).
std::string json_escape(std::string_view s);

}  // namespace synran::obs
