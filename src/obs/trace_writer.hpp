// JSONL run traces: one schema-versioned JSON event per line.
//
// Event stream per execution (schema "synran-trace/1"):
//
//   {"event":"run_begin","schema":"synran-trace/1","run":K,
//    "n":N,"t":T,"per_round_cap":C,"seed":S}
//   {"event":"round","run":K,"round":R,"alive":A,"halted":H,"senders":P,
//    "ones":O,"zeros":Z,"det":D,"decided":Q,"crashes":X,"budget_left":B,
//    "delivered":M}                       — one line per communication round
//   {"event":"run_end","run":K,"terminated":tf,"agreement":tf,
//    "decision":0|1|null,"rounds_to_decision":R1,"rounds_to_halt":R2,
//    "crashes":X,"delivered":M,"survivors":V}
//
// An execution that throws instead of completing is closed by the additive
//   {"event":"run_abandoned","run":K,"rep":I,"seed":S,"attempt":A,
//    "error":"..."}
// event (in place of run_end); when the failure happened before run_begin
// (setup threw) the event stands alone and "run" names the index the
// aborted execution would have used.
//
// "run" is a 0-based index so several executions (the reps of one
// experiment) can share a file. "budget_left" is the crash budget *before*
// the round's plan was applied. The stream is deterministic: identical
// seeds produce byte-identical files.
//
// Runs executed with a non-zero omission budget (or per-round omission cap)
// additionally carry, per event, the additive fields
//   run_begin: "omission_budget":OB, "omission_round_cap":OC
//   round:     "omissions":OM (directives), "omitted":OL (suppressed links)
//   run_end:   "omissions":OM, "omitted":OL (run totals)
// Runs executed with a non-zero byzantine budget (or per-round corruption
// cap) likewise carry the additive fields
//   run_begin: "byzantine_budget":BB, "byzantine_round_cap":BC
//   round:     "corruptions":CD (directives), "corrupted":CL (forged links)
//   run_end:   "corruptions":CD, "corrupted":CL (run totals)
// Runs under the fail-stop default (all limits zero) omit these fields
// entirely, so existing traces stay byte-identical.
//
// The same event stream has a varint-packed binary twin, schema
// "synran-trace/2" (trace_format.hpp / trace_binary.hpp); both writers
// share the TraceWriter interface below so harnesses pick a format at
// runtime (`--trace-format=jsonl|bin`) and `synran trace convert`
// round-trips files byte-stably between the two.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "obs/atomic_file.hpp"
#include "obs/io_error.hpp"
#include "obs/observer.hpp"
#include "obs/trace_format.hpp"

namespace synran::obs {

inline constexpr const char* kTraceSchema = "synran-trace/1";

/// A format-agnostic trace sink: an EngineObserver that persists the event
/// stream and accounts for what it wrote. Owning writers buffer into
/// `path + ".tmp"` and publish atomically in close(); see AtomicFileSink.
class TraceWriter : public EngineObserver {
 public:
  /// Finalizes an owning writer (flush, verify, atomic rename); throws
  /// IoError on failure. No-op for borrowed-stream and closed writers.
  virtual void close() = 0;

  /// Persisted events so far (run_begin/round/run_end/run_abandoned).
  virtual std::uint64_t events_written() const = 0;

  /// Payload bytes emitted so far (text bytes incl. newlines for JSONL,
  /// header + record bytes for binary).
  virtual std::uint64_t bytes_written() const = 0;

  virtual TraceFormat format() const = 0;
};

/// Writes the event stream to a borrowed ostream, or — with the path
/// constructor — to an owned file. The owning mode writes to `path + ".tmp"`
/// and atomically renames onto `path` in close(), so a crash or a full disk
/// never leaves a truncated artifact under the final name. close() verifies
/// the stream state and throws IoError on any failure; the destructor
/// finalizes best-effort without throwing. Lines are flushed per event only
/// when `flush_each` is set (useful while debugging a crash).
class JsonlTraceWriter final : public TraceWriter {
 public:
  explicit JsonlTraceWriter(std::ostream& out, bool flush_each = false);

  /// Owning mode: stream events into `path + ".tmp"`; close() renames the
  /// temp file onto `path`. Throws IoError if the temp file cannot be opened.
  explicit JsonlTraceWriter(const std::string& path, bool flush_each = false);

  void on_run_begin(const RunInfo& info) override;
  void on_round_end(const RoundObservation& round) override;
  void on_run_end(const RunObservation& result) override;
  void on_run_abandoned(const RunAbandoned& failure) override;

  /// Owning mode only: true until close() succeeded.
  bool is_open() const { return sink_.is_open(); }

  void close() override { sink_.close(); }

  std::uint64_t events_written() const override { return events_; }
  std::uint64_t bytes_written() const override { return bytes_; }
  std::uint64_t runs_written() const { return runs_; }
  TraceFormat format() const override { return TraceFormat::Jsonl; }

 private:
  void write_line(const class JsonValue& event);

  std::ostream* out_ = nullptr;
  bool flush_each_ = false;
  bool emit_omissions_ = false;  ///< latched per run from RunInfo
  bool emit_corruptions_ = false;  ///< latched per run from RunInfo
  bool in_run_ = false;  ///< run_begin seen, no run_end/run_abandoned yet
  std::uint64_t events_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t runs_ = 0;  ///< run_begin events so far; "run" = runs_ - 1

  AtomicFileSink sink_;  ///< disengaged for the borrowed-stream constructor
};

}  // namespace synran::obs
