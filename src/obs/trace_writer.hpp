// JSONL run traces: one schema-versioned JSON event per line.
//
// Event stream per execution (schema "synran-trace/1"):
//
//   {"event":"run_begin","schema":"synran-trace/1","run":K,
//    "n":N,"t":T,"per_round_cap":C,"seed":S}
//   {"event":"round","run":K,"round":R,"alive":A,"halted":H,"senders":P,
//    "ones":O,"zeros":Z,"det":D,"decided":Q,"crashes":X,"budget_left":B,
//    "delivered":M}                       — one line per communication round
//   {"event":"run_end","run":K,"terminated":tf,"agreement":tf,
//    "decision":0|1|null,"rounds_to_decision":R1,"rounds_to_halt":R2,
//    "crashes":X,"delivered":M,"survivors":V}
//
// "run" is a 0-based index so several executions (the reps of one
// experiment) can share a file. "budget_left" is the crash budget *before*
// the round's plan was applied. The stream is deterministic: identical
// seeds produce byte-identical files.
#pragma once

#include <cstdint>
#include <iosfwd>

#include "obs/observer.hpp"

namespace synran::obs {

inline constexpr const char* kTraceSchema = "synran-trace/1";

/// Writes the event stream to a borrowed ostream. Lines are flushed per
/// event only when `flush_each` is set (useful while debugging a crash).
class JsonlTraceWriter final : public EngineObserver {
 public:
  explicit JsonlTraceWriter(std::ostream& out, bool flush_each = false)
      : out_(&out), flush_each_(flush_each) {}

  void on_run_begin(const RunInfo& info) override;
  void on_round_end(const RoundObservation& round) override;
  void on_run_end(const RunObservation& result) override;

  std::uint64_t events_written() const { return events_; }
  std::uint64_t runs_written() const { return runs_; }

 private:
  void write_line(const class JsonValue& event);

  std::ostream* out_;
  bool flush_each_ = false;
  std::uint64_t events_ = 0;
  std::uint64_t runs_ = 0;  ///< run_begin events so far; "run" = runs_ - 1
};

}  // namespace synran::obs
