// JSONL run traces: one schema-versioned JSON event per line.
//
// Event stream per execution (schema "synran-trace/1"):
//
//   {"event":"run_begin","schema":"synran-trace/1","run":K,
//    "n":N,"t":T,"per_round_cap":C,"seed":S}
//   {"event":"round","run":K,"round":R,"alive":A,"halted":H,"senders":P,
//    "ones":O,"zeros":Z,"det":D,"decided":Q,"crashes":X,"budget_left":B,
//    "delivered":M}                       — one line per communication round
//   {"event":"run_end","run":K,"terminated":tf,"agreement":tf,
//    "decision":0|1|null,"rounds_to_decision":R1,"rounds_to_halt":R2,
//    "crashes":X,"delivered":M,"survivors":V}
//
// An execution that throws instead of completing is closed by the additive
//   {"event":"run_abandoned","run":K,"rep":I,"seed":S,"attempt":A,
//    "error":"..."}
// event (in place of run_end); when the failure happened before run_begin
// (setup threw) the event stands alone and "run" names the index the
// aborted execution would have used.
//
// "run" is a 0-based index so several executions (the reps of one
// experiment) can share a file. "budget_left" is the crash budget *before*
// the round's plan was applied. The stream is deterministic: identical
// seeds produce byte-identical files.
//
// Runs executed with a non-zero omission budget (or per-round omission cap)
// additionally carry, per event, the additive fields
//   run_begin: "omission_budget":OB, "omission_round_cap":OC
//   round:     "omissions":OM (directives), "omitted":OL (suppressed links)
//   run_end:   "omissions":OM, "omitted":OL (run totals)
// Runs under the fail-stop default (both limits zero) omit these fields
// entirely, so existing traces stay byte-identical.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "obs/io_error.hpp"
#include "obs/observer.hpp"

namespace synran::obs {

inline constexpr const char* kTraceSchema = "synran-trace/1";

/// Writes the event stream to a borrowed ostream, or — with the path
/// constructor — to an owned file. The owning mode writes to `path + ".tmp"`
/// and atomically renames onto `path` in close(), so a crash or a full disk
/// never leaves a truncated artifact under the final name. close() verifies
/// the stream state and throws IoError on any failure; the destructor
/// finalizes best-effort without throwing. Lines are flushed per event only
/// when `flush_each` is set (useful while debugging a crash).
class JsonlTraceWriter final : public EngineObserver {
 public:
  explicit JsonlTraceWriter(std::ostream& out, bool flush_each = false);

  /// Owning mode: stream events into `path + ".tmp"`; close() renames the
  /// temp file onto `path`. Throws IoError if the temp file cannot be opened.
  explicit JsonlTraceWriter(const std::string& path, bool flush_each = false);

  ~JsonlTraceWriter() override;

  void on_run_begin(const RunInfo& info) override;
  void on_round_end(const RoundObservation& round) override;
  void on_run_end(const RunObservation& result) override;
  void on_run_abandoned(const RunAbandoned& failure) override;

  /// Owning mode only: true until close() succeeded.
  bool is_open() const { return file_ != nullptr && !closed_; }

  /// Finalizes an owning writer: flushes, verifies the stream, closes the
  /// temp file and renames it onto the final path. Throws IoError with the
  /// offending path on any failure. No-op for borrowed-stream writers and
  /// for already-closed writers.
  void close();

  std::uint64_t events_written() const { return events_; }
  std::uint64_t runs_written() const { return runs_; }

 private:
  void write_line(const class JsonValue& event);

  std::ostream* out_ = nullptr;
  bool flush_each_ = false;
  bool emit_omissions_ = false;  ///< latched per run from RunInfo
  bool in_run_ = false;  ///< run_begin seen, no run_end/run_abandoned yet
  std::uint64_t events_ = 0;
  std::uint64_t runs_ = 0;  ///< run_begin events so far; "run" = runs_ - 1

  // Owning mode (null/empty for the borrowed-stream constructor).
  std::unique_ptr<std::ofstream> file_;
  std::string final_path_;
  std::string tmp_path_;
  bool closed_ = false;
};

}  // namespace synran::obs
