#include "obs/trace_reader.hpp"

#include <fstream>
#include <istream>

#include "obs/json.hpp"
#include "obs/trace_writer.hpp"

namespace synran::obs {
namespace {

/// Required integer field, cast to the caller's unsigned width. Seeds round
/// through JSON as int64 (possibly negative for the top bit); the cast
/// recovers the original u64 exactly.
template <typename T>
bool get_uint(const JsonValue& ev, const char* key, T& out) {
  const JsonValue* v = ev.find(key);
  if (v == nullptr || !v->is_int()) return false;
  out = static_cast<T>(v->as_int());
  return true;
}

bool get_bool(const JsonValue& ev, const char* key, bool& out) {
  const JsonValue* v = ev.find(key);
  if (v == nullptr || !v->is_bool()) return false;
  out = v->as_bool();
  return true;
}

}  // namespace

JsonlTraceReader::JsonlTraceReader(std::istream& in)
    : in_(&in), path_("<stream>") {}

JsonlTraceReader::JsonlTraceReader(const std::string& path)
    : owned_(std::make_unique<std::ifstream>(path, std::ios::binary)),
      in_(owned_.get()),
      path_(path) {
  if (!static_cast<std::ifstream&>(*owned_).is_open()) {
    throw IoError("trace: cannot open '" + path + "' for reading");
  }
}

void JsonlTraceReader::fail(const std::string& what) const {
  throw IoError("trace: " + path_ + ":" + std::to_string(line_) + ": " + what);
}

bool JsonlTraceReader::next(TraceRecord& out) {
  std::string line;
  for (;;) {
    if (!std::getline(*in_, line)) {
      if (in_->bad()) fail("read failure");
      return false;
    }
    ++line_;
    if (!line.empty()) break;
  }

  std::string err;
  const auto parsed = JsonValue::parse(line, &err);
  if (!parsed.has_value()) fail("bad JSON (" + err + ")");
  const JsonValue& ev = *parsed;
  const JsonValue* event = ev.find("event");
  if (event == nullptr || !event->is_string()) fail("missing \"event\"");
  const std::string& name = event->as_string();

  out = TraceRecord{};
  if (name == "run_begin") {
    out.kind = TraceRecordKind::RunBegin;
    const JsonValue* schema = ev.find("schema");
    if (schema == nullptr || !schema->is_string() ||
        schema->as_string() != kTraceSchema) {
      fail("run_begin schema is not synran-trace/1");
    }
    if (!get_uint(ev, "n", out.begin.n) ||
        !get_uint(ev, "t", out.begin.t_budget) ||
        !get_uint(ev, "per_round_cap", out.begin.per_round_cap) ||
        !get_uint(ev, "seed", out.begin.seed)) {
      fail("run_begin missing a required field");
    }
    // Omission limits are additive and presence-gated; a run_begin without
    // them is a fail-stop run (both zero).
    if (ev.find("omission_budget") != nullptr &&
        (!get_uint(ev, "omission_budget", out.begin.omission_budget) ||
         !get_uint(ev, "omission_round_cap", out.begin.omission_round_cap))) {
      fail("run_begin omission fields malformed");
    }
    return true;
  }
  if (name == "round") {
    out.kind = TraceRecordKind::RoundEnd;
    RoundObservation& r = out.round;
    if (!get_uint(ev, "round", r.round) || !get_uint(ev, "alive", r.alive) ||
        !get_uint(ev, "halted", r.halted) ||
        !get_uint(ev, "senders", r.senders) || !get_uint(ev, "ones", r.ones) ||
        !get_uint(ev, "zeros", r.zeros) ||
        !get_uint(ev, "det", r.deterministic) ||
        !get_uint(ev, "decided", r.decided) ||
        !get_uint(ev, "crashes", r.crashes) ||
        !get_uint(ev, "budget_left", r.budget_left) ||
        !get_uint(ev, "delivered", r.delivered)) {
      fail("round missing a required field");
    }
    if (ev.find("omissions") != nullptr &&
        (!get_uint(ev, "omissions", r.omissions) ||
         !get_uint(ev, "omitted", r.omitted))) {
      fail("round omission fields malformed");
    }
    return true;
  }
  if (name == "run_end") {
    out.kind = TraceRecordKind::RunEnd;
    RunObservation& res = out.end;
    const JsonValue* decision = ev.find("decision");
    if (decision == nullptr || !(decision->is_null() || decision->is_int())) {
      fail("run_end decision must be an integer or null");
    }
    res.has_decision = decision->is_int();
    if (res.has_decision) res.decision = static_cast<int>(decision->as_int());
    if (!get_bool(ev, "terminated", res.terminated) ||
        !get_bool(ev, "agreement", res.agreement) ||
        !get_uint(ev, "rounds_to_decision", res.rounds_to_decision) ||
        !get_uint(ev, "rounds_to_halt", res.rounds_to_halt) ||
        !get_uint(ev, "crashes", res.crashes_total) ||
        !get_uint(ev, "delivered", res.messages_delivered) ||
        !get_uint(ev, "survivors", res.survivors)) {
      fail("run_end missing a required field");
    }
    if (ev.find("omissions") != nullptr &&
        (!get_uint(ev, "omissions", res.omissions_total) ||
         !get_uint(ev, "omitted", res.messages_omitted))) {
      fail("run_end omission fields malformed");
    }
    return true;
  }
  if (name == "run_abandoned") {
    out.kind = TraceRecordKind::RunAbandoned;
    RunAbandoned& ab = out.abandoned;
    const JsonValue* error = ev.find("error");
    if (error == nullptr || !error->is_string()) {
      fail("run_abandoned missing \"error\"");
    }
    ab.error = error->as_string();
    if (!get_uint(ev, "rep", ab.rep) || !get_uint(ev, "seed", ab.seed) ||
        !get_uint(ev, "attempt", ab.attempt)) {
      fail("run_abandoned missing a required field");
    }
    return true;
  }
  fail("unknown event \"" + name + "\"");
}

}  // namespace synran::obs
