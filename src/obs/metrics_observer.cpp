#include "obs/metrics_observer.hpp"

namespace synran::obs {

namespace {
/// Power-of-two-ish crash-count buckets: per-round spend is small near the
/// √(n·ln n) cap, so low buckets get the resolution.
const std::vector<double>& crash_bounds() {
  static const std::vector<double> bounds{0,  1,  2,   4,   8,  16,
                                          32, 64, 128, 256, 512, 1024};
  return bounds;
}
}  // namespace

MetricsObserver::MetricsObserver() : registry_(&own_) { pre_register(); }

MetricsObserver::MetricsObserver(MetricsRegistry& registry)
    : registry_(&registry) {
  pre_register();
}

void MetricsObserver::pre_register() {
  // Touch every metric this observer ever writes, so a batch with zero runs
  // (or all-conditional paths untaken, e.g. no terminated run) still reads
  // back as zeros instead of throwing on the missing name.
  for (const char* name : {"runs", "runs_terminated", "runs_agreement",
                           "rounds", "crashes", "messages_delivered"})
    registry_->counter(name);
  registry_->histogram("crashes_per_round", crash_bounds());
  for (const char* name :
       {"rounds_to_decision", "rounds_to_halt", "crashes_total",
        "messages_total"})
    registry_->summary(name);
}

void MetricsObserver::on_run_begin(const RunInfo&) {
  registry_->counter("runs").inc();
}

void MetricsObserver::on_round_end(const RoundObservation& round) {
  registry_->counter("rounds").inc();
  registry_->counter("crashes").inc(round.crashes);
  registry_->counter("messages_delivered").inc(round.delivered);
  registry_->histogram("crashes_per_round", crash_bounds())
      .add(static_cast<double>(round.crashes));
}

void MetricsObserver::on_run_end(const RunObservation& result) {
  if (result.terminated) registry_->counter("runs_terminated").inc();
  if (result.agreement) registry_->counter("runs_agreement").inc();
  if (result.terminated) {
    registry_->summary("rounds_to_decision")
        .add(static_cast<double>(result.rounds_to_decision));
    registry_->summary("rounds_to_halt")
        .add(static_cast<double>(result.rounds_to_halt));
  }
  registry_->summary("crashes_total")
      .add(static_cast<double>(result.crashes_total));
  registry_->summary("messages_total")
      .add(static_cast<double>(result.messages_delivered));
}

}  // namespace synran::obs
