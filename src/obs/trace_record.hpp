// In-memory trace events: the lingua franca of the trace subsystem.
//
// A TraceRecord is one EngineObserver callback, reified. TraceRecorder
// captures a callback stream into a vector (the executor buffers per-rep
// records this way so parallel tracing can replay them in rep order), the
// binary/JSONL readers decode files back into records, and replay() turns a
// record sequence into callbacks again — so any reader can drive any writer
// or aggregator, and "convert" is reader → replay → writer.
//
// Kinds RoundBegin/FaultPlan/Deliveries exist only in memory: the trace
// file schemas persist run_begin / round(= on_round_end) / run_end /
// run_abandoned, but a recorder must preserve the full callback stream so
// replaying into a live observer (metrics, a future exporter) is
// indistinguishable from observing the engine directly.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/observer.hpp"

namespace synran::obs {

enum class TraceRecordKind : std::uint8_t {
  RunBegin,
  RoundBegin,   ///< in-memory only (not persisted by the file formats)
  FaultPlan,    ///< in-memory only
  Deliveries,   ///< in-memory only
  RoundEnd,
  RunEnd,
  RunAbandoned,
};

/// One observer callback. Only the fields for `kind` are meaningful; the
/// rest stay default-constructed (the struct is small and reps are bounded,
/// so a tagged union is not worth the access ceremony).
struct TraceRecord {
  TraceRecordKind kind = TraceRecordKind::RunBegin;
  RunInfo begin;             ///< RunBegin
  RoundObservation round;    ///< RoundBegin / RoundEnd
  Round plan_round = 0;      ///< FaultPlan / Deliveries
  FaultPlan plan;            ///< FaultPlan
  std::uint64_t delivered = 0;  ///< Deliveries
  RunObservation end;        ///< RunEnd
  RunAbandoned abandoned;    ///< RunAbandoned
};

/// Captures the callback stream into a borrowed vector (cleared on
/// construction), preserving callback order and every payload.
class TraceRecorder final : public EngineObserver {
 public:
  explicit TraceRecorder(std::vector<TraceRecord>& sink) : sink_(&sink) {
    sink_->clear();
  }

  void on_run_begin(const RunInfo& info) override;
  void on_round_begin(const RoundObservation& round) override;
  void on_fault_plan(Round round, const FaultPlan& plan) override;
  void on_deliveries(Round round, std::uint64_t delivered) override;
  void on_round_end(const RoundObservation& round) override;
  void on_run_end(const RunObservation& result) override;
  void on_run_abandoned(const RunAbandoned& failure) override;

 private:
  std::vector<TraceRecord>* sink_;
};

/// Re-fires one record as the corresponding callback on `to`.
void replay(const TraceRecord& record, EngineObserver& to);

/// Re-fires a captured stream in order.
void replay(const std::vector<TraceRecord>& records, EngineObserver& to);

}  // namespace synran::obs
