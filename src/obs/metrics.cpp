#include "obs/metrics.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace synran::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {
  SYNRAN_REQUIRE(!bounds_.empty(), "histogram needs at least one bound");
  SYNRAN_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()),
                 "histogram bounds must be sorted ascending");
}

void Histogram::add(double x) {
  SYNRAN_CHECK_MSG(!counts_.empty(), "histogram used before construction");
  std::size_t i = 0;
  while (i < bounds_.size() && x > bounds_[i]) ++i;
  ++counts_[i];
  ++total_;
  sum_ += x;
}

void Histogram::merge(const Histogram& other) {
  if (other.counts_.empty()) return;
  if (counts_.empty()) {
    *this = other;
    return;
  }
  SYNRAN_REQUIRE(bounds_ == other.bounds_,
                 "cannot merge histograms with different bounds");
  for (std::size_t i = 0; i < counts_.size(); ++i)
    counts_[i] += other.counts_[i];
  total_ += other.total_;
  sum_ += other.sum_;
}

Histogram Histogram::restore(std::vector<double> upper_bounds,
                             std::vector<std::uint64_t> counts, double sum) {
  Histogram h{std::move(upper_bounds)};
  SYNRAN_REQUIRE(counts.size() == h.bounds_.size() + 1,
                 "Histogram::restore: counts must cover every bucket plus "
                 "overflow");
  h.counts_ = std::move(counts);
  h.total_ = 0;
  for (const std::uint64_t c : h.counts_) h.total_ += c;
  h.sum_ = sum;
  return h;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  return counters_[std::string(name)];
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return gauges_[std::string(name)];
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      const std::vector<double>& upper_bounds) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram(upper_bounds)).first;
  } else {
    SYNRAN_REQUIRE(it->second.bounds() == upper_bounds,
                   "histogram re-registered with different bounds");
  }
  return it->second;
}

Summary& MetricsRegistry::summary(std::string_view name) {
  return summaries_[std::string(name)];
}

namespace {
template <typename Map>
const typename Map::mapped_type& at_or_throw(const Map& map,
                                             std::string_view name,
                                             const char* kind) {
  const auto it = map.find(name);
  SYNRAN_REQUIRE(it != map.end(),
                 std::string("unknown ") + kind + " metric: " +
                     std::string(name));
  return it->second;
}
}  // namespace

const Counter& MetricsRegistry::counter_at(std::string_view name) const {
  return at_or_throw(counters_, name, "counter");
}

const Gauge& MetricsRegistry::gauge_at(std::string_view name) const {
  return at_or_throw(gauges_, name, "gauge");
}

const Histogram& MetricsRegistry::histogram_at(std::string_view name) const {
  return at_or_throw(histograms_, name, "histogram");
}

const Summary& MetricsRegistry::summary_at(std::string_view name) const {
  return at_or_throw(summaries_, name, "summary");
}

bool MetricsRegistry::has_counter(std::string_view name) const {
  return counters_.find(name) != counters_.end();
}

bool MetricsRegistry::has_summary(std::string_view name) const {
  return summaries_.find(name) != summaries_.end();
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) counters_[name].merge(c);
  for (const auto& [name, g] : other.gauges_) gauges_[name].merge(g);
  for (const auto& [name, h] : other.histograms_) histograms_[name].merge(h);
  for (const auto& [name, s] : other.summaries_) summaries_[name].merge(s);
}

JsonValue MetricsRegistry::to_json() const {
  JsonValue counters = JsonValue::object();
  for (const auto& [name, c] : counters_)
    counters.set(name, JsonValue(c.value()));

  JsonValue gauges = JsonValue::object();
  for (const auto& [name, g] : gauges_) gauges.set(name, JsonValue(g.value()));

  JsonValue histograms = JsonValue::object();
  for (const auto& [name, h] : histograms_) {
    JsonValue bounds = JsonValue::array();
    for (const double b : h.bounds()) bounds.push(JsonValue(b));
    JsonValue counts = JsonValue::array();
    for (const std::uint64_t c : h.counts()) counts.push(JsonValue(c));
    histograms.set(name, JsonValue::object()
                             .set("bounds", std::move(bounds))
                             .set("counts", std::move(counts))
                             .set("count", JsonValue(h.count()))
                             .set("sum", JsonValue(h.sum())));
  }

  JsonValue summaries = JsonValue::object();
  for (const auto& [name, s] : summaries_) {
    summaries.set(name,
                  JsonValue::object()
                      .set("count", JsonValue(std::uint64_t{s.count()}))
                      .set("mean", JsonValue(s.mean()))
                      .set("stddev", JsonValue(s.stddev()))
                      .set("min", JsonValue(s.min()))
                      .set("max", JsonValue(s.max())));
  }

  return JsonValue::object()
      .set("counters", std::move(counters))
      .set("gauges", std::move(gauges))
      .set("histograms", std::move(histograms))
      .set("summaries", std::move(summaries));
}

}  // namespace synran::obs
