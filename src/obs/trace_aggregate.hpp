// Streaming trace aggregation: fold a trace into per-run statistics
// without materializing events.
//
// TraceAggregator consumes TraceRecords — from a reader (offline) or as a
// live EngineObserver — and maintains the exact MetricsRegistry layout of
// exec::RepeatedRunStats: same metric names, same fold order per run, so
// `aggregator.metrics().to_json()` over a trace is byte-identical to the
// batch's own statistics (ctest-proven). Two deliberate divergences, both
// inherent to what a trace records:
//
//   * "validity_failures" stays 0: validity compares decisions against the
//     initial input vector, which no trace event carries.
//   * "reps_quarantined" stays 0: the file formats persist abandoned
//     *attempts*, not the retry/quarantine resolution; attempts are counted
//     under the additive "runs_abandoned" counter instead, registered only
//     when one is seen so clean traces match RepeatedRunStats exactly.
#pragma once

#include <cstdint>

#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/trace_record.hpp"

namespace synran::obs {

class TraceAggregator final : public EngineObserver {
 public:
  TraceAggregator();

  /// Folds one persisted event; ignores the in-memory-only kinds.
  void add(const TraceRecord& record);

  // Live-observer mode: the persisted subset of callbacks, folded the same.
  void on_run_begin(const RunInfo& info) override;
  void on_round_end(const RoundObservation& round) override;
  void on_run_end(const RunObservation& result) override;
  void on_run_abandoned(const RunAbandoned& failure) override;

  /// Completed runs (run_end events) folded so far.
  std::uint64_t runs() const { return runs_; }
  /// Round events folded so far.
  std::uint64_t rounds() const { return rounds_; }
  /// Abandoned-attempt events seen so far.
  std::uint64_t abandoned() const { return abandoned_; }

  const MetricsRegistry& metrics() const { return metrics_; }

 private:
  MetricsRegistry metrics_;
  std::uint64_t runs_ = 0;
  std::uint64_t rounds_ = 0;
  std::uint64_t abandoned_ = 0;
};

}  // namespace synran::obs
