// Streaming trace readers: decode a persisted trace back into TraceRecords.
//
// Readers are pull-based iterators — next() yields one record at a time, so
// aggregation and conversion never materialize a whole campaign trace in
// memory. Malformed input of any shape (syntax errors, unknown events,
// missing fields, truncation) raises obs::IoError with the offending
// line/offset in the message; readers never crash on hostile bytes.
//
// JsonlTraceReader decodes schema "synran-trace/1" (trace_writer.hpp).
// BinaryTraceReader (trace_binary.hpp) decodes "synran-trace/2". Use
// sniff_trace_format / open_trace_reader (trace_io.hpp) to dispatch on the
// file's leading bytes.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "obs/io_error.hpp"
#include "obs/trace_record.hpp"

namespace synran::obs {

/// Pull-based record stream over a persisted trace.
class TraceReader {
 public:
  virtual ~TraceReader() = default;

  /// Decodes the next persisted event into `out`. Returns false at a clean
  /// end of input; throws IoError on any malformed or truncated content.
  virtual bool next(TraceRecord& out) = 0;
};

/// Decodes synran-trace/1 JSONL. Omission-gated fields are recognized by
/// presence, mirroring the writer's per-run latch; the "run" indices the
/// writer derives are validated implicitly by replay (writers re-derive
/// them), not parsed into the records.
class JsonlTraceReader final : public TraceReader {
 public:
  /// Borrowed stream; must outlive the reader.
  explicit JsonlTraceReader(std::istream& in);

  /// Owning mode: opens `path`; throws IoError when it cannot be read.
  explicit JsonlTraceReader(const std::string& path);

  bool next(TraceRecord& out) override;

  /// Lines consumed so far (including blank lines, which are skipped).
  std::uint64_t lines_read() const { return line_; }

 private:
  [[noreturn]] void fail(const std::string& what) const;

  std::unique_ptr<std::istream> owned_;
  std::istream* in_;
  std::string path_;  ///< for error messages; "<stream>" when borrowed
  std::uint64_t line_ = 0;
};

}  // namespace synran::obs
