// Trace-format dispatch and the cross-format drivers.
//
// This is the seam the CLI (`synran trace`) and the bench harness stand on:
// pick a writer by TraceFormat, sniff a file's format from its leading
// bytes, stream-convert between formats (reader → replay → writer, so
// conversion is byte-stable in both directions), aggregate a trace without
// materializing it, and — for overhead accounting — wrap any writer in a
// TraceWriteTimer that measures the wall-time the observer callbacks spend
// persisting events (std::chrono is lint-allowed only here in src/obs/ and
// in bench/).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "obs/trace_aggregate.hpp"
#include "obs/trace_binary.hpp"
#include "obs/trace_reader.hpp"
#include "obs/trace_writer.hpp"

namespace synran::obs {

/// Decides a file's trace format from its first bytes: the synran-trace/2
/// magic wins, anything else is presumed JSONL (whose first byte is '{').
/// Throws IoError when the file cannot be opened or is empty.
TraceFormat sniff_trace_format(const std::string& path);

/// Opens `path` with the reader matching its sniffed format.
std::unique_ptr<TraceReader> open_trace_reader(const std::string& path);

/// Creates an owning writer for `path` in the requested format. The header
/// metadata only reaches binary writers; JSONL carries its schema inline.
std::unique_ptr<TraceWriter> make_trace_writer(TraceFormat format,
                                               const std::string& path,
                                               Trace2Header header = {});

/// Streams every record of `reader` into `writer` and closes the writer.
/// Returns the number of events converted.
std::uint64_t convert_trace(TraceReader& reader, TraceWriter& writer);

/// Streams every record of `reader` into `agg`.
void aggregate_trace(TraceReader& reader, TraceAggregator& agg);

/// Forwards every callback to the wrapped writer, accumulating the
/// wall-time spent inside it — the trace-write share of a batch, reported
/// by the bench harness as the `trace_overhead` block. Timing never touches
/// the event payloads, so traces stay deterministic.
class TraceWriteTimer final : public TraceWriter {
 public:
  explicit TraceWriteTimer(TraceWriter& inner) : inner_(&inner) {}

  void on_run_begin(const RunInfo& info) override;
  void on_round_begin(const RoundObservation& round) override;
  void on_fault_plan(Round round, const FaultPlan& plan) override;
  void on_deliveries(Round round, std::uint64_t delivered) override;
  void on_round_end(const RoundObservation& round) override;
  void on_run_end(const RunObservation& result) override;
  void on_run_abandoned(const RunAbandoned& failure) override;

  void close() override;

  std::uint64_t events_written() const override {
    return inner_->events_written();
  }
  std::uint64_t bytes_written() const override {
    return inner_->bytes_written();
  }
  TraceFormat format() const override { return inner_->format(); }

  /// Wall-seconds spent inside the wrapped writer (callbacks + close).
  double write_seconds() const {
    return std::chrono::duration<double>(spent_).count();
  }

 private:
  TraceWriter* inner_;
  std::chrono::steady_clock::duration spent_{};
};

}  // namespace synran::obs
