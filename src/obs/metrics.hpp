// Deterministic metrics registry: counters, gauges, fixed-bucket histograms,
// and Welford summaries, addressable by name.
//
// The registry is the aggregation substrate for every quantity the paper's
// arguments track (rounds to decision, per-round crash spend, message
// complexity, coin outcomes): engines and harnesses write into it through
// plain value types, and reports read it back out as JSON. Two rules keep it
// reproducible: no wall-clock anywhere (time belongs to google-benchmark, in
// bench/), and name-ordered storage (std::map) so serialization is
// byte-identical for identical runs. All types are value types — registries
// copy, merge, and live inside result structs without ownership ceremony.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/stats.hpp"
#include "obs/json.hpp"

namespace synran::obs {

/// Monotone event count.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }
  void merge(const Counter& other) { value_ += other.value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }
  /// Merging gauges keeps the other side's value (last writer wins, and the
  /// merged-in registry is the newer one by convention).
  void merge(const Gauge& other) { value_ = other.value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram: bucket i counts samples ≤ bounds[i] (first
/// matching bucket), with one implicit overflow bucket past the last bound.
/// Bounds are fixed at creation so cross-rep and cross-registry merges are
/// exact.
class Histogram {
 public:
  Histogram() = default;
  explicit Histogram(std::vector<double> upper_bounds);

  void add(double x);

  const std::vector<double>& bounds() const { return bounds_; }
  /// counts().size() == bounds().size() + 1; the last entry is overflow.
  const std::vector<std::uint64_t>& counts() const { return counts_; }
  std::uint64_t count() const { return total_; }
  double sum() const { return sum_; }

  /// Requires identical bounds.
  void merge(const Histogram& other);

  /// Rebuilds a histogram from a snapshot of bounds()/counts()/sum().
  /// `counts` must have bounds.size() + 1 entries (the overflow bucket).
  static Histogram restore(std::vector<double> upper_bounds,
                           std::vector<std::uint64_t> counts, double sum);

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
};

/// Named metrics, one namespace per kind. Mutable lookups create on first
/// use; const lookups require the metric to exist (reports read only what
/// something wrote).
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `upper_bounds` applies on first creation only and must match on every
  /// later lookup of the same name.
  Histogram& histogram(std::string_view name,
                       const std::vector<double>& upper_bounds);
  Summary& summary(std::string_view name);

  const Counter& counter_at(std::string_view name) const;
  const Gauge& gauge_at(std::string_view name) const;
  const Histogram& histogram_at(std::string_view name) const;
  const Summary& summary_at(std::string_view name) const;

  bool has_counter(std::string_view name) const;
  bool has_summary(std::string_view name) const;

  /// Folds `other` into this registry: counters add, gauges overwrite,
  /// histograms add bucket-wise, summaries merge (Welford).
  void merge(const MetricsRegistry& other);

  /// Snapshot of everything, grouped by kind, name-ordered:
  /// {"counters":{...},"gauges":{...},"histograms":{...},"summaries":{...}}
  JsonValue to_json() const;

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty() &&
           summaries_.empty();
  }

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
  std::map<std::string, Summary, std::less<>> summaries_;
};

}  // namespace synran::obs
