#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/check.hpp"

namespace synran::obs {

namespace {

/// Renders a double exactly enough to round-trip (max_digits10), trimming to
/// the shortest representation that parses back to the same bits so output
/// stays stable and readable.
std::string render_double(double d) {
  SYNRAN_CHECK_MSG(std::isfinite(d), "JSON cannot represent NaN/Inf");
  char buf[32];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, d);
    double back = 0.0;
    std::sscanf(buf, "%lf", &back);
    if (back == d) break;
  }
  std::string out(buf);
  // Bare "1e+06"-style output is valid JSON; "1." is not produced by %g.
  return out;
}

void dump_value(const JsonValue& v, std::string& out);

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  out += json_escape(s);
  out += '"';
}

void dump_value(const JsonValue& v, std::string& out) {
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_int()) {
    out += std::to_string(v.as_int());
  } else if (v.is_double()) {
    out += render_double(v.as_double());
  } else if (v.is_string()) {
    dump_string(v.as_string(), out);
  } else if (v.is_array()) {
    out += '[';
    bool first = true;
    for (const auto& e : v.as_array()) {
      if (!first) out += ',';
      first = false;
      dump_value(e, out);
    }
    out += ']';
  } else {
    out += '{';
    bool first = true;
    for (const auto& [k, e] : v.as_object()) {
      if (!first) out += ',';
      first = false;
      dump_string(k, out);
      out += ':';
      dump_value(e, out);
    }
    out += '}';
  }
}

/// Recursive-descent parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run(std::string* error) {
    auto v = parse_value();
    if (v.has_value()) {
      skip_ws();
      if (pos_ != text_.size()) {
        v.reset();
        error_ = "trailing characters after document";
      }
    }
    if (!v.has_value() && error != nullptr) {
      *error = error_ + " at offset " + std::to_string(pos_);
    }
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  std::optional<JsonValue> fail(std::string what) {
    error_ = std::move(what);
    return std::nullopt;
  }

  std::optional<JsonValue> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      auto s = parse_string();
      if (!s.has_value()) return std::nullopt;
      return JsonValue(std::move(*s));
    }
    if (literal("true")) return JsonValue(true);
    if (literal("false")) return JsonValue(false);
    if (literal("null")) return JsonValue(nullptr);
    return parse_number();
  }

  std::optional<JsonValue> parse_object() {
    ++pos_;  // '{'
    JsonValue::Object obj;
    skip_ws();
    if (consume('}')) return JsonValue(std::move(obj));
    while (true) {
      skip_ws();
      auto key = parse_string();
      if (!key.has_value()) return std::nullopt;
      skip_ws();
      if (!consume(':')) return fail("expected ':' in object");
      auto val = parse_value();
      if (!val.has_value()) return std::nullopt;
      obj.emplace_back(std::move(*key), std::move(*val));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return JsonValue(std::move(obj));
      return fail("expected ',' or '}' in object");
    }
  }

  std::optional<JsonValue> parse_array() {
    ++pos_;  // '['
    JsonValue::Array arr;
    skip_ws();
    if (consume(']')) return JsonValue(std::move(arr));
    while (true) {
      auto val = parse_value();
      if (!val.has_value()) return std::nullopt;
      arr.push_back(std::move(*val));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return JsonValue(std::move(arr));
      return fail("expected ',' or ']' in array");
    }
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) {
      error_ = "expected string";
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            error_ = "truncated \\u escape";
            return std::nullopt;
          }
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else {
              error_ = "bad \\u escape";
              return std::nullopt;
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by our writers; pass them through as-is).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default:
          error_ = "bad escape";
          return std::nullopt;
      }
    }
    error_ = "unterminated string";
    return std::nullopt;
  }

  std::optional<JsonValue> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") return fail("expected a value");
    if (integral) {
      std::int64_t i = 0;
      const auto [p, ec] =
          std::from_chars(tok.data(), tok.data() + tok.size(), i);
      if (ec == std::errc() && p == tok.data() + tok.size())
        return JsonValue(i);
      // Fall through to double for out-of-range integers.
    }
    double d = 0.0;
    const auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (ec != std::errc() || p != tok.data() + tok.size())
      return fail("malformed number");
    return JsonValue(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

JsonValue& JsonValue::set(std::string key, JsonValue value) {
  SYNRAN_CHECK_MSG(is_object(), "set() on a non-object JSON value");
  auto& obj = std::get<Object>(value_);
  for (const auto& [k, v] : obj)
    SYNRAN_CHECK_MSG(k != key, "duplicate JSON object key");
  obj.emplace_back(std::move(key), std::move(value));
  return *this;
}

JsonValue& JsonValue::push(JsonValue value) {
  SYNRAN_CHECK_MSG(is_array(), "push() on a non-array JSON value");
  std::get<Array>(value_).push_back(std::move(value));
  return *this;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : as_object())
    if (k == key) return &v;
  return nullptr;
}

std::string JsonValue::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

std::optional<JsonValue> JsonValue::parse(std::string_view text,
                                          std::string* error) {
  return Parser(text).run(error);
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace synran::obs
