// Binary trace format "synran-trace/2": the wire-level constants.
//
// The JSONL schema synran-trace/1 (trace_writer.hpp) materializes every
// round event as text; this is its campaign-scale sibling — the same event
// stream, varint-packed. One file holds a fixed little-endian header
// followed by a flat sequence of kind-tagged records:
//
//   header (24 bytes):
//     u64  magic        "SYNTRC2\n" read as a little-endian word
//     u16  version      kTrace2Version
//     u16  seed_schema  synran-seed schema of the producing batch
//     u32  reserved     zero
//     char git_rev[8]   producing build, NUL-padded/truncated
//
//   record := kind byte, then:
//     run_begin    flags byte (bit0 = omission fields present), varints
//                  n, t, per_round_cap, seed (kTrace2RunBeginFields)
//     round        varints round, alive, halted, senders, ones, zeros,
//                  det, decided, crashes, budget_left, delivered
//                  (kTrace2RoundFields)
//     run_end      flags byte (terminated/agreement/has_decision/
//                  decision-one bits), varints rounds_to_decision,
//                  rounds_to_halt, crashes, delivered, survivors
//                  (kTrace2RunEndFields)
//     run_abandoned varints rep, seed, attempt, error_len, then error_len
//                  bytes of exception text (capped at kTrace2MaxErrorBytes)
//
// When a run's run_begin carried the omission flag, its run_begin gains
// varints omission_budget, omission_round_cap and every round / run_end
// record of that run gains varints omissions, omitted
// (kTrace2OmissionFields each) — mirroring the JSONL gating exactly, so
// conversion is bijective. When run_begin carried the corruption flag
// (bit1), it likewise gains varints byzantine_budget, byzantine_round_cap
// and every round / run_end record gains varints corruptions, corrupted
// (kTrace2CorruptionFields each), placed *after* any omission extras in the
// same record. Varints are LEB128 (7 data bits per byte, high
// bit = continuation, at most kTrace2MaxVarintBytes bytes for a u64). Run
// indices are never stored: like the JSONL writer, readers derive them by
// counting run_begin records. The stream is deterministic: identical seeds
// produce byte-identical files.
//
// These constants are the single source of truth shared by the writer and
// reader here and by tools/bench_schema_check.cpp; the schema-literals lint
// rule fails if the checker stops referencing any of them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

namespace synran::obs {

inline constexpr const char* kTrace2Schema = "synran-trace/2";
/// "SYNTRC2\n" as a little-endian u64 — self-identifying, non-ASCII-safe
/// (the \n catches CRLF mangling), and impossible to confuse with JSONL's
/// leading '{'.
inline constexpr std::uint64_t kTrace2Magic = 0x0A32435254'4E5953ULL;
inline constexpr std::uint16_t kTrace2Version = 2;
inline constexpr std::size_t kTrace2HeaderSize = 24;
inline constexpr std::size_t kTrace2GitRevSize = 8;

// Record kind tags (first byte of every record).
inline constexpr std::uint8_t kTrace2KindRunBegin = 0x01;
inline constexpr std::uint8_t kTrace2KindRound = 0x02;
inline constexpr std::uint8_t kTrace2KindRunEnd = 0x03;
inline constexpr std::uint8_t kTrace2KindRunAbandoned = 0x04;

// run_begin flags byte.
inline constexpr std::uint8_t kTrace2FlagOmissions = 0x01;
inline constexpr std::uint8_t kTrace2FlagCorruptions = 0x02;

// run_end flags byte.
inline constexpr std::uint8_t kTrace2EndFlagTerminated = 0x01;
inline constexpr std::uint8_t kTrace2EndFlagAgreement = 0x02;
inline constexpr std::uint8_t kTrace2EndFlagHasDecision = 0x04;
inline constexpr std::uint8_t kTrace2EndFlagDecisionOne = 0x08;

// Varint counts per record body (before the omission-gated extras).
inline constexpr std::size_t kTrace2RunBeginFields = 4;
inline constexpr std::size_t kTrace2RoundFields = 11;
inline constexpr std::size_t kTrace2RunEndFields = 5;
inline constexpr std::size_t kTrace2AbandonFields = 4;
/// Extra varints on run_begin/round/run_end when the omission flag is set.
inline constexpr std::size_t kTrace2OmissionFields = 2;
/// Extra varints on run_begin/round/run_end when the corruption flag is set
/// (after the omission extras when both flags are present).
inline constexpr std::size_t kTrace2CorruptionFields = 2;

/// A u64 LEB128 varint is at most 10 bytes; an 11th continuation byte is
/// corruption, not a longer integer.
inline constexpr std::size_t kTrace2MaxVarintBytes = 10;
/// Hostile-input cap on run_abandoned error text (1 MiB) so a corrupt
/// length varint cannot drive a gigabyte allocation.
inline constexpr std::size_t kTrace2MaxErrorBytes = std::size_t{1} << 20;

/// On-disk trace encodings the tooling can read and write.
enum class TraceFormat { Jsonl, Binary };

inline const char* to_string(TraceFormat format) {
  return format == TraceFormat::Binary ? "bin" : "jsonl";
}

/// Parses the user-facing format names ("jsonl" | "bin"); nullopt otherwise.
inline std::optional<TraceFormat> parse_trace_format(std::string_view name) {
  if (name == "jsonl") return TraceFormat::Jsonl;
  if (name == "bin") return TraceFormat::Binary;
  return std::nullopt;
}

}  // namespace synran::obs
