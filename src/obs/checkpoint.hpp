// Per-cell checkpoint ledger for long experiment sweeps (synran-ckpt/1).
//
// A bench sweep is a sequence of grid cells, each an independent repeated
// batch whose statistics are a pure function of the cell's spec and master
// seed (seed schema 2 derives every rep's streams from the cell seed and
// rep index, so cells do not depend on execution order). The ledger
// persists each completed cell as it finishes:
//
//   {"schema":"synran-ckpt/1","experiment":E,"seed":S}        — header
//   {"cell":K,"key":"...","data":{...}}                       — one per cell
//
// `cell` is the 0-based position of the cell in the sweep's execution
// order; `key` is a fingerprint of everything the cell's result depends on
// (protocol, spec fields, seed schema). A resumed run only reloads a cell
// when both match, so an edited harness silently recomputes instead of
// serving stale data. `data` is an exact snapshot — summaries carry the raw
// Welford m2, and the JSON writer renders doubles with round-trip precision
// — so a restored cell reproduces the original report byte-for-byte.
//
// The ledger rewrites the whole file on every record (tmp + atomic rename,
// like every other artifact writer): ledgers are a few lines per sweep, and
// full rewrites keep a torn write from corrupting previously recorded
// cells. Loading tolerates a truncated or torn tail — the valid prefix is
// kept — which is exactly the state a killed run leaves behind.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace synran::obs {

inline constexpr const char* kCheckpointSchema = "synran-ckpt/1";

/// Exact state snapshot of a registry: every counter, gauge, histogram and
/// summary with enough raw state (Welford m2, bucket counts) that
/// registry_restore() rebuilds an indistinguishable registry — identical
/// to_json() output AND identical behavior under further merges.
JsonValue registry_snapshot(const MetricsRegistry& registry);

/// Inverse of registry_snapshot(). Throws ArgumentError on a malformed
/// snapshot (wrong shape, negative counts, m2 < 0).
MetricsRegistry registry_restore(const JsonValue& snapshot);

/// One completed sweep cell.
struct CheckpointCell {
  std::uint64_t cell = 0;  ///< 0-based position in the sweep
  std::string key;         ///< spec fingerprint; must match to reload
  JsonValue data;          ///< cell payload (stats snapshot + failures)
};

/// The on-disk ledger. Default-constructed ledgers are disabled (every
/// operation is a no-op and find() always misses); the binding constructor
/// loads whatever compatible prefix already exists at `path`.
class CheckpointLedger {
 public:
  CheckpointLedger() = default;

  /// Binds to `path` and loads any existing ledger: lines are consumed
  /// until the first malformed one (a torn tail from a killed run), and a
  /// header that disagrees on schema, experiment, or seed discards the
  /// file's cells entirely (the next record() overwrites it).
  CheckpointLedger(std::string path, std::string experiment,
                   std::uint64_t seed);

  bool enabled() const { return !path_.empty(); }
  const std::string& path() const { return path_; }
  /// Cells recovered from disk by the binding constructor.
  std::size_t loaded() const { return loaded_; }
  std::size_t size() const { return cells_.size(); }

  /// The recorded cell at position `cell`, or nullptr when it is absent or
  /// its key disagrees with `key` (stale ledger from an edited sweep).
  const CheckpointCell* find(std::uint64_t cell, std::string_view key) const;

  /// Records a completed cell (replacing any previous record at the same
  /// position) and rewrites the ledger via tmp + atomic rename. Throws
  /// IoError on any write failure; the tmp file is removed first, so no
  /// partial artifact is left behind. No-op when disabled.
  void record(CheckpointCell cell);

 private:
  void flush() const;

  std::string path_;
  std::string experiment_;
  std::uint64_t seed_ = 0;
  std::size_t loaded_ = 0;
  std::vector<CheckpointCell> cells_;
};

}  // namespace synran::obs
