// The one exception type for artifact-persistence failures.
//
// Trace files, bench reports, and checkpoint ledgers all follow the same
// write-to-temp + atomic-rename discipline; when any step of it fails (the
// temp file cannot be opened, the stream goes bad mid-write, or the final
// rename is refused) the writer throws IoError with the offending path in
// the message and removes its temp file, so a failure never leaves a
// truncated artifact under the final name.
#pragma once

#include <stdexcept>

namespace synran::obs {

/// An artifact could not be persisted (stream failure or the final atomic
/// rename failed). The message names the path involved.
class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace synran::obs
