// Round-granular observability hooks for the synchronous engine.
//
// The engine's correctness instrumentation (RunAuditor) throws on model
// violations; this layer is its non-judgmental sibling: it *reports* what
// happened — populations, traffic composition, fault plans, delivery counts
// — to any number of installed observers, so tracing, metrics, and future
// exporters compose without the engine knowing about any of them. Install
// one observer via EngineOptions::observer, or several via MultiObserver.
//
// Callback order per execution (mirroring the engine's phases):
//   on_run_begin
//   per round with traffic: on_round_begin (after phase A),
//                           on_fault_plan (adversary decided),
//                           on_deliveries (phase B done),
//                           on_round_end  (crashes committed)
//   on_run_end
// The final silent round (everyone halted, nothing sent) produces no round
// callbacks, matching the paper's round count and TracingAdversary.
//
// Observers must not mutate the execution and must stay deterministic: no
// wall-clock, no external randomness (the wall-clock ban is lint-enforced
// repo-wide outside src/obs/ and bench/).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "net/types.hpp"

namespace synran::obs {

/// Static facts about one execution, delivered at on_run_begin.
struct RunInfo {
  std::uint32_t n = 0;
  std::uint32_t t_budget = 0;
  std::uint32_t per_round_cap = 0;  ///< 0 = uncapped
  std::uint64_t seed = 0;
  std::uint32_t omission_budget = 0;    ///< 0 = omissions forbidden
  std::uint32_t omission_round_cap = 0;  ///< 0 = uncapped
  std::uint32_t byzantine_budget = 0;    ///< 0 = corrupted values forbidden
  std::uint32_t byzantine_round_cap = 0;  ///< 0 = uncapped
};

/// One round's observables. At on_round_begin the crash/delivery fields are
/// still zero; on_round_end re-delivers the same round with them filled.
struct RoundObservation {
  Round round = 0;
  std::uint32_t alive = 0;    ///< not crashed (halted included)
  std::uint32_t halted = 0;   ///< voluntarily stopped
  std::uint32_t senders = 0;  ///< broadcast a payload this round
  std::uint32_t ones = 0;     ///< senders supporting 1
  std::uint32_t zeros = 0;    ///< senders supporting 0
  std::uint32_t deterministic = 0;  ///< senders in SynRan's det stage
  std::uint32_t decided = 0;  ///< live processes with decided() true
  std::uint32_t budget_left = 0;    ///< crash budget before this round
  std::uint32_t crashes = 0;        ///< victims of this round's plan
  std::uint64_t delivered = 0;      ///< point-to-point deliveries this round
  std::uint32_t omissions = 0;      ///< omission directives in this plan
  std::uint64_t omitted = 0;        ///< links suppressed this round
  std::uint32_t corruptions = 0;    ///< corruption directives in this plan
  std::uint64_t corrupted = 0;      ///< links forged this round
};

/// Final verdicts of one execution (a flattened RunResult, kept here so the
/// observer layer does not depend on the engine headers).
struct RunObservation {
  bool terminated = false;
  bool agreement = false;
  bool has_decision = false;
  int decision = 0;
  std::uint32_t rounds_to_decision = 0;
  std::uint32_t rounds_to_halt = 0;
  std::uint32_t crashes_total = 0;
  std::uint64_t messages_delivered = 0;
  std::uint32_t omissions_total = 0;     ///< omission directives spent
  std::uint64_t messages_omitted = 0;    ///< links suppressed in total
  std::uint32_t corruptions_total = 0;   ///< corruption directives spent
  std::uint64_t messages_corrupted = 0;  ///< links forged in total
  std::uint32_t survivors = 0;  ///< processes never crashed
};

/// One failed attempt at a repetition, delivered at on_run_abandoned when an
/// execution throws instead of reaching on_run_end. `attempt` is 0-based;
/// the executor may retry the same rep (identical seed) up to its retry
/// budget, so several abandonments can precede one successful run_end.
struct RunAbandoned {
  std::size_t rep = 0;        ///< repetition index within the batch
  std::uint64_t seed = 0;     ///< the rep's engine seed (schema-2 derived)
  std::uint32_t attempt = 0;  ///< which attempt failed (0 = first)
  std::string error;          ///< exception text
};

class EngineObserver {
 public:
  virtual ~EngineObserver() = default;

  virtual void on_run_begin(const RunInfo& /*info*/) {}
  /// After phase A: populations and traffic composition are known; crash and
  /// delivery fields of `round` are still zero.
  virtual void on_round_begin(const RoundObservation& /*round*/) {}
  /// The adversary's decision for this round, before it is applied.
  virtual void on_fault_plan(Round /*round*/, const FaultPlan& /*plan*/) {}
  /// Phase B finished; `delivered` is this round's point-to-point total.
  virtual void on_deliveries(Round /*round*/, std::uint64_t /*delivered*/) {}
  /// Crashes committed; `round` now carries crashes/delivered/budget.
  virtual void on_round_end(const RoundObservation& /*round*/) {}
  virtual void on_run_end(const RunObservation& /*result*/) {}
  /// An execution threw before reaching on_run_end. May fire instead of —
  /// never in addition to — on_run_end for a given attempt, and may fire
  /// with no preceding on_run_begin when the failure happened during setup
  /// (e.g. the adversary factory threw).
  virtual void on_run_abandoned(const RunAbandoned& /*failure*/) {}
};

/// Fans every callback out to a list of observers, in installation order.
/// Borrows the observers; they must outlive the runs they watch.
class MultiObserver final : public EngineObserver {
 public:
  MultiObserver() = default;
  explicit MultiObserver(std::vector<EngineObserver*> observers)
      : observers_(std::move(observers)) {}

  void add(EngineObserver& observer) { observers_.push_back(&observer); }
  std::size_t size() const { return observers_.size(); }

  void on_run_begin(const RunInfo& info) override {
    for (auto* o : observers_) o->on_run_begin(info);
  }
  void on_round_begin(const RoundObservation& round) override {
    for (auto* o : observers_) o->on_round_begin(round);
  }
  void on_fault_plan(Round round, const FaultPlan& plan) override {
    for (auto* o : observers_) o->on_fault_plan(round, plan);
  }
  void on_deliveries(Round round, std::uint64_t delivered) override {
    for (auto* o : observers_) o->on_deliveries(round, delivered);
  }
  void on_round_end(const RoundObservation& round) override {
    for (auto* o : observers_) o->on_round_end(round);
  }
  void on_run_end(const RunObservation& result) override {
    for (auto* o : observers_) o->on_run_end(result);
  }
  void on_run_abandoned(const RunAbandoned& failure) override {
    for (auto* o : observers_) o->on_run_abandoned(failure);
  }

 private:
  std::vector<EngineObserver*> observers_;
};

}  // namespace synran::obs
