#include "obs/trace_io.hpp"

#include <fstream>

namespace synran::obs {
namespace {

/// Times one forwarded call. A plain scope guard, so an inner throw still
/// charges the time spent before it.
class Stopwatch {
 public:
  explicit Stopwatch(std::chrono::steady_clock::duration& total)
      : total_(total), start_(std::chrono::steady_clock::now()) {}
  ~Stopwatch() { total_ += std::chrono::steady_clock::now() - start_; }

 private:
  std::chrono::steady_clock::duration& total_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

TraceFormat sniff_trace_format(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    throw IoError("trace: cannot open '" + path + "' for reading");
  }
  char lead[8] = {};
  in.read(lead, sizeof lead);
  if (in.gcount() == 0) {
    throw IoError("trace: '" + path + "' is empty");
  }
  std::uint64_t magic = 0;
  for (std::size_t i = 0; i < sizeof lead; ++i) {
    magic |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(lead[i]))
             << (8 * i);
  }
  return magic == kTrace2Magic ? TraceFormat::Binary : TraceFormat::Jsonl;
}

std::unique_ptr<TraceReader> open_trace_reader(const std::string& path) {
  if (sniff_trace_format(path) == TraceFormat::Binary) {
    return std::make_unique<BinaryTraceReader>(path);
  }
  return std::make_unique<JsonlTraceReader>(path);
}

std::unique_ptr<TraceWriter> make_trace_writer(TraceFormat format,
                                               const std::string& path,
                                               Trace2Header header) {
  if (format == TraceFormat::Binary) {
    return std::make_unique<BinaryTraceWriter>(path, std::move(header));
  }
  return std::make_unique<JsonlTraceWriter>(path);
}

std::uint64_t convert_trace(TraceReader& reader, TraceWriter& writer) {
  TraceRecord record;
  std::uint64_t events = 0;
  while (reader.next(record)) {
    replay(record, writer);
    ++events;
  }
  writer.close();
  return events;
}

void aggregate_trace(TraceReader& reader, TraceAggregator& agg) {
  TraceRecord record;
  while (reader.next(record)) agg.add(record);
}

void TraceWriteTimer::on_run_begin(const RunInfo& info) {
  Stopwatch timer(spent_);
  inner_->on_run_begin(info);
}

void TraceWriteTimer::on_round_begin(const RoundObservation& round) {
  Stopwatch timer(spent_);
  inner_->on_round_begin(round);
}

void TraceWriteTimer::on_fault_plan(Round round, const FaultPlan& plan) {
  Stopwatch timer(spent_);
  inner_->on_fault_plan(round, plan);
}

void TraceWriteTimer::on_deliveries(Round round, std::uint64_t delivered) {
  Stopwatch timer(spent_);
  inner_->on_deliveries(round, delivered);
}

void TraceWriteTimer::on_round_end(const RoundObservation& round) {
  Stopwatch timer(spent_);
  inner_->on_round_end(round);
}

void TraceWriteTimer::on_run_end(const RunObservation& result) {
  Stopwatch timer(spent_);
  inner_->on_run_end(result);
}

void TraceWriteTimer::on_run_abandoned(const RunAbandoned& failure) {
  Stopwatch timer(spent_);
  inner_->on_run_abandoned(failure);
}

void TraceWriteTimer::close() {
  Stopwatch timer(spent_);
  inner_->close();
}

}  // namespace synran::obs
