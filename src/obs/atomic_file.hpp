// Owned artifact output with the repo's temp + atomic-rename discipline.
//
// Every persisted artifact (traces in either format, bench reports and
// CSVs, checkpoint ledgers, serve cache entries) follows the same
// contract: stream into `path + ".tmp"`, and only a successful commit —
// flush, stream-state check, fsync, rename — publishes the final name. A
// crash, a full disk, or an exception mid-write leaves at worst a ".tmp"
// file behind and the final path untouched; the fsync before the rename
// closes the power-loss window in which a journaling filesystem persists
// the rename but not the data, which would otherwise surface after reboot
// as an *empty or truncated file under the final name* — exactly the torn
// artifact the atomic rename was meant to rule out.
//
// commit_atomic() is that commit step factored out so every writer shares
// it, and set_io_fault_hook() is the test shim that proves the ordering:
// tests install a hook, observe the Fsync stage fire before the Rename
// stage for every writer, and throw from a stage to simulate transient
// I/O faults (the serve cache's retry-with-backoff is tested this way).
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>

#include "obs/io_error.hpp"

namespace synran::obs {

/// Stages of a temp + atomic-rename commit, in the order they run.
enum class IoStage : std::uint8_t {
  Fsync,   ///< about to fsync the fully written temp file
  Rename,  ///< temp file durable; about to rename onto the final path
};

const char* to_string(IoStage stage);

/// Test-only fault-injection shim: when set, the hook runs before each
/// commit stage of every atomic writer in the process. Throwing IoError
/// from the hook simulates a transient fault at that stage (the commit
/// aborts, the temp file stays, the final path is untouched). Pass nullptr
/// to clear. Not thread-safe: install/clear only while no writer runs.
using IoFaultHook = std::function<void(IoStage, const std::string& path)>;
void set_io_fault_hook(IoFaultHook hook);

/// fsyncs the file at `path` (which must exist and be a regular file);
/// throws IoError on open or fsync failure.
void fsync_file(const std::string& path);

/// The shared commit step: fault hook → fsync(tmp_path) → fault hook →
/// rename(tmp_path → final_path) → best-effort fsync of the parent
/// directory (so the rename itself survives power loss). Throws IoError
/// prefixed with `what` on any failure; the temp file is left in place for
/// the caller to retry or remove.
void commit_atomic(const std::string& tmp_path, const std::string& final_path,
                   std::string_view what);

/// An owned output file that becomes visible under its final name only when
/// close() succeeds. Disengaged (stream() == nullptr) when default-built,
/// so writers can hold one unconditionally and borrow an ostream instead.
class AtomicFileSink {
 public:
  AtomicFileSink();

  /// Opens `path + ".tmp"` for binary writing; throws IoError on failure.
  explicit AtomicFileSink(const std::string& path);

  /// Best-effort finalize: flush/close/fsync/rename without throwing. A
  /// failure leaves the ".tmp" file behind and the final path untouched.
  ~AtomicFileSink();

  AtomicFileSink(const AtomicFileSink&) = delete;
  AtomicFileSink& operator=(const AtomicFileSink&) = delete;

  /// The temp-file stream, or nullptr when disengaged.
  std::ostream* stream();

  /// Engaged and not yet successfully closed.
  bool is_open() const { return file_ != nullptr && !closed_; }

  /// Flushes, verifies the stream state, closes the temp file, fsyncs it,
  /// and renames it onto the final path. Throws IoError naming the
  /// offending path on any failure. No-op when disengaged or already
  /// closed.
  void close();

 private:
  std::unique_ptr<std::ofstream> file_;
  std::string final_path_;
  std::string tmp_path_;
  bool closed_ = false;
};

}  // namespace synran::obs
