// Owned artifact output with the repo's temp + atomic-rename discipline.
//
// Every persisted artifact (traces in either format, bench reports,
// checkpoint ledgers) follows the same contract: stream into
// `path + ".tmp"`, and only a successful close() — flush, stream-state
// check, rename — publishes the final name. A crash, a full disk, or an
// exception mid-write leaves at worst a ".tmp" file behind and the final
// path untouched. This class is that contract factored out of the writers.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "obs/io_error.hpp"

namespace synran::obs {

/// An owned output file that becomes visible under its final name only when
/// close() succeeds. Disengaged (stream() == nullptr) when default-built,
/// so writers can hold one unconditionally and borrow an ostream instead.
class AtomicFileSink {
 public:
  AtomicFileSink();

  /// Opens `path + ".tmp"` for binary writing; throws IoError on failure.
  explicit AtomicFileSink(const std::string& path);

  /// Best-effort finalize: flush/close/rename without throwing. A failure
  /// leaves the ".tmp" file behind and the final path untouched.
  ~AtomicFileSink();

  AtomicFileSink(const AtomicFileSink&) = delete;
  AtomicFileSink& operator=(const AtomicFileSink&) = delete;

  /// The temp-file stream, or nullptr when disengaged.
  std::ostream* stream();

  /// Engaged and not yet successfully closed.
  bool is_open() const { return file_ != nullptr && !closed_; }

  /// Flushes, verifies the stream state, closes the temp file and renames
  /// it onto the final path. Throws IoError naming the offending path on
  /// any failure. No-op when disengaged or already closed.
  void close();

 private:
  std::unique_ptr<std::ofstream> file_;
  std::string final_path_;
  std::string tmp_path_;
  bool closed_ = false;
};

}  // namespace synran::obs
