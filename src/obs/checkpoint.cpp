#include "obs/checkpoint.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <utility>

#include "common/check.hpp"
#include "obs/atomic_file.hpp"
#include "obs/io_error.hpp"

namespace synran::obs {

JsonValue registry_snapshot(const MetricsRegistry& registry) {
  // Reuse the public lossy snapshot for the catalogue of names, then emit
  // exact state per entry. to_json() is name-ordered, so the snapshot is
  // deterministic too.
  const JsonValue lossy = registry.to_json();

  JsonValue counters = JsonValue::object();
  for (const auto& [name, value] : lossy.find("counters")->as_object()) {
    (void)value;
    counters.set(name, JsonValue(registry.counter_at(name).value()));
  }

  JsonValue gauges = JsonValue::object();
  for (const auto& [name, value] : lossy.find("gauges")->as_object()) {
    (void)value;
    gauges.set(name, JsonValue(registry.gauge_at(name).value()));
  }

  JsonValue histograms = JsonValue::object();
  for (const auto& [name, value] : lossy.find("histograms")->as_object()) {
    (void)value;
    const Histogram& h = registry.histogram_at(name);
    JsonValue bounds = JsonValue::array();
    for (const double b : h.bounds()) bounds.push(JsonValue(b));
    JsonValue counts = JsonValue::array();
    for (const std::uint64_t c : h.counts()) counts.push(JsonValue(c));
    histograms.set(name, JsonValue::object()
                             .set("bounds", std::move(bounds))
                             .set("counts", std::move(counts))
                             .set("sum", JsonValue(h.sum())));
  }

  JsonValue summaries = JsonValue::object();
  for (const auto& [name, value] : lossy.find("summaries")->as_object()) {
    (void)value;
    const Summary& s = registry.summary_at(name);
    summaries.set(name,
                  JsonValue::object()
                      .set("count", JsonValue(std::uint64_t{s.count()}))
                      .set("mean", JsonValue(s.mean()))
                      .set("m2", JsonValue(s.m2()))
                      .set("min", JsonValue(s.min()))
                      .set("max", JsonValue(s.max())));
  }

  return JsonValue::object()
      .set("counters", std::move(counters))
      .set("gauges", std::move(gauges))
      .set("histograms", std::move(histograms))
      .set("summaries", std::move(summaries));
}

namespace {

const JsonValue::Object& member_object(const JsonValue& snapshot,
                                       const char* name) {
  const JsonValue* member = snapshot.find(name);
  SYNRAN_REQUIRE(member != nullptr && member->is_object(),
                 std::string("registry snapshot: missing object '") + name +
                     "'");
  return member->as_object();
}

double number_field(const JsonValue& obj, const char* name) {
  const JsonValue* field = obj.find(name);
  SYNRAN_REQUIRE(field != nullptr && field->is_number(),
                 std::string("registry snapshot: missing number '") + name +
                     "'");
  return field->as_double();
}

std::uint64_t count_field(const JsonValue& obj, const char* name) {
  const JsonValue* field = obj.find(name);
  SYNRAN_REQUIRE(field != nullptr && field->is_int() && field->as_int() >= 0,
                 std::string("registry snapshot: missing count '") + name +
                     "'");
  return static_cast<std::uint64_t>(field->as_int());
}

}  // namespace

MetricsRegistry registry_restore(const JsonValue& snapshot) {
  SYNRAN_REQUIRE(snapshot.is_object(), "registry snapshot must be an object");
  MetricsRegistry registry;

  for (const auto& [name, value] : member_object(snapshot, "counters")) {
    SYNRAN_REQUIRE(value.is_int(),
                   "registry snapshot: counter '" + name + "' must be an int");
    registry.counter(name).inc(static_cast<std::uint64_t>(value.as_int()));
  }

  for (const auto& [name, value] : member_object(snapshot, "gauges")) {
    SYNRAN_REQUIRE(value.is_number(),
                   "registry snapshot: gauge '" + name + "' must be a number");
    registry.gauge(name).set(value.as_double());
  }

  for (const auto& [name, value] : member_object(snapshot, "histograms")) {
    SYNRAN_REQUIRE(value.is_object(),
                   "registry snapshot: histogram '" + name + "' malformed");
    const JsonValue* bounds = value.find("bounds");
    const JsonValue* counts = value.find("counts");
    SYNRAN_REQUIRE(bounds != nullptr && bounds->is_array() &&
                       counts != nullptr && counts->is_array(),
                   "registry snapshot: histogram '" + name + "' malformed");
    std::vector<double> bound_values;
    for (const JsonValue& b : bounds->as_array()) {
      SYNRAN_REQUIRE(b.is_number(),
                     "registry snapshot: histogram '" + name + "' malformed");
      bound_values.push_back(b.as_double());
    }
    std::vector<std::uint64_t> count_values;
    for (const JsonValue& c : counts->as_array()) {
      SYNRAN_REQUIRE(c.is_int() && c.as_int() >= 0,
                     "registry snapshot: histogram '" + name + "' malformed");
      count_values.push_back(static_cast<std::uint64_t>(c.as_int()));
    }
    registry
        .histogram(name, bound_values)
        .merge(Histogram::restore(bound_values, std::move(count_values),
                                  number_field(value, "sum")));
  }

  for (const auto& [name, value] : member_object(snapshot, "summaries")) {
    SYNRAN_REQUIRE(value.is_object(),
                   "registry snapshot: summary '" + name + "' malformed");
    registry.summary(name) = Summary::restore(
        count_field(value, "count"), number_field(value, "mean"),
        number_field(value, "m2"), number_field(value, "min"),
        number_field(value, "max"));
  }

  return registry;
}

CheckpointLedger::CheckpointLedger(std::string path, std::string experiment,
                                   std::uint64_t seed)
    : path_(std::move(path)), experiment_(std::move(experiment)), seed_(seed) {
  SYNRAN_REQUIRE(!path_.empty(), "checkpoint ledger needs a path");

  std::ifstream in(path_, std::ios::binary);
  if (!in.is_open()) return;  // nothing recorded yet

  std::string line;
  if (!std::getline(in, line)) return;
  const auto header = JsonValue::parse(line);
  if (!header.has_value() || !header->is_object()) return;
  const JsonValue* schema = header->find("schema");
  const JsonValue* experiment_field = header->find("experiment");
  const JsonValue* seed_field = header->find("seed");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != kCheckpointSchema ||
      experiment_field == nullptr || !experiment_field->is_string() ||
      experiment_field->as_string() != experiment_ || seed_field == nullptr ||
      !seed_field->is_int() ||
      static_cast<std::uint64_t>(seed_field->as_int()) != seed_) {
    return;  // foreign ledger; treat as empty (overwritten on record)
  }

  while (std::getline(in, line)) {
    const auto parsed = JsonValue::parse(line);
    if (!parsed.has_value() || !parsed->is_object()) break;  // torn tail
    const JsonValue* cell = parsed->find("cell");
    const JsonValue* key = parsed->find("key");
    const JsonValue* data = parsed->find("data");
    if (cell == nullptr || !cell->is_int() || cell->as_int() < 0 ||
        key == nullptr || !key->is_string() || data == nullptr) {
      break;
    }
    cells_.push_back(CheckpointCell{
        static_cast<std::uint64_t>(cell->as_int()), key->as_string(), *data});
  }
  loaded_ = cells_.size();
}

const CheckpointCell* CheckpointLedger::find(std::uint64_t cell,
                                             std::string_view key) const {
  const auto it =
      std::find_if(cells_.begin(), cells_.end(),
                   [cell](const CheckpointCell& c) { return c.cell == cell; });
  if (it == cells_.end() || it->key != key) return nullptr;
  return &*it;
}

void CheckpointLedger::record(CheckpointCell cell) {
  if (!enabled()) return;
  const auto it = std::find_if(
      cells_.begin(), cells_.end(),
      [&cell](const CheckpointCell& c) { return c.cell == cell.cell; });
  if (it != cells_.end()) {
    *it = std::move(cell);
  } else {
    cells_.push_back(std::move(cell));
  }
  flush();
}

void CheckpointLedger::flush() const {
  const std::string tmp_path = path_ + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      throw IoError("checkpoint: cannot open '" + tmp_path + "' for writing");
    }
    out << JsonValue::object()
               .set("schema", kCheckpointSchema)
               .set("experiment", experiment_)
               .set("seed", JsonValue(seed_))
               .dump()
        << '\n';
    for (const CheckpointCell& c : cells_) {
      out << JsonValue::object()
                 .set("cell", JsonValue(c.cell))
                 .set("key", c.key)
                 .set("data", c.data)
                 .dump()
          << '\n';
    }
    out.flush();
    if (!out.good()) {
      out.close();
      std::error_code ec;
      std::filesystem::remove(tmp_path, ec);
      throw IoError("checkpoint: write failure on '" + tmp_path +
                    "' (disk full or I/O error)");
    }
  }
  try {
    commit_atomic(tmp_path, path_, "checkpoint");
  } catch (const IoError&) {
    std::error_code ignored;
    std::filesystem::remove(tmp_path, ignored);
    throw;
  }
}

}  // namespace synran::obs
