#include "obs/atomic_file.hpp"

#include <filesystem>
#include <fstream>
#include <system_error>

namespace synran::obs {

AtomicFileSink::AtomicFileSink() = default;

AtomicFileSink::AtomicFileSink(const std::string& path)
    : file_(std::make_unique<std::ofstream>()),
      final_path_(path),
      tmp_path_(path + ".tmp") {
  file_->open(tmp_path_, std::ios::binary | std::ios::trunc);
  if (!file_->is_open()) {
    throw IoError("trace: cannot open '" + tmp_path_ + "' for writing");
  }
}

AtomicFileSink::~AtomicFileSink() {
  if (file_ == nullptr || closed_) return;
  file_->flush();
  const bool ok = file_->good();
  file_->close();
  if (ok && file_->good()) {
    std::error_code ec;
    std::filesystem::rename(tmp_path_, final_path_, ec);
  }
}

std::ostream* AtomicFileSink::stream() { return file_.get(); }

void AtomicFileSink::close() {
  if (file_ == nullptr || closed_) return;
  file_->flush();
  if (!file_->good()) {
    throw IoError("trace: write failure on '" + tmp_path_ +
                  "' (disk full or I/O error)");
  }
  file_->close();
  if (file_->fail()) {
    throw IoError("trace: failed to close '" + tmp_path_ + "'");
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path_, final_path_, ec);
  if (ec) {
    throw IoError("trace: cannot rename '" + tmp_path_ + "' onto '" +
                  final_path_ + "': " + ec.message());
  }
  closed_ = true;
}

}  // namespace synran::obs
