#include "obs/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

namespace synran::obs {

namespace {

IoFaultHook& fault_hook() {
  static IoFaultHook hook;
  return hook;
}

void run_hook(IoStage stage, const std::string& path) {
  if (fault_hook()) fault_hook()(stage, path);
}

/// Best-effort fsync of `path`'s parent directory so the rename that just
/// published a file survives power loss too. Directory fsync is not
/// supported on every filesystem, so failures are swallowed: the data
/// itself is already durable, only the new directory entry may lag.
void fsync_parent_dir(const std::string& path) {
  const std::string dir = std::filesystem::path(path).parent_path().string();
  const int fd = ::open(dir.empty() ? "." : dir.c_str(),
                        O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

const char* to_string(IoStage stage) {
  switch (stage) {
    case IoStage::Fsync:
      return "fsync";
    case IoStage::Rename:
      return "rename";
  }
  return "?";
}

void set_io_fault_hook(IoFaultHook hook) { fault_hook() = std::move(hook); }

void fsync_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0) {
    throw IoError("fsync: cannot open '" + path +
                  "': " + std::strerror(errno));
  }
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    throw IoError("fsync: cannot sync '" + path + "': " + std::strerror(err));
  }
  if (::close(fd) != 0) {
    throw IoError("fsync: cannot close '" + path +
                  "': " + std::strerror(errno));
  }
}

void commit_atomic(const std::string& tmp_path, const std::string& final_path,
                   std::string_view what) {
  const std::string prefix = std::string(what) + ": ";
  try {
    run_hook(IoStage::Fsync, tmp_path);
    fsync_file(tmp_path);
    run_hook(IoStage::Rename, tmp_path);
  } catch (const IoError& e) {
    throw IoError(prefix + e.what());
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, final_path, ec);
  if (ec) {
    throw IoError(prefix + "cannot rename '" + tmp_path + "' onto '" +
                  final_path + "': " + ec.message());
  }
  fsync_parent_dir(final_path);
}

AtomicFileSink::AtomicFileSink() = default;

AtomicFileSink::AtomicFileSink(const std::string& path)
    : file_(std::make_unique<std::ofstream>()),
      final_path_(path),
      tmp_path_(path + ".tmp") {
  file_->open(tmp_path_, std::ios::binary | std::ios::trunc);
  if (!file_->is_open()) {
    throw IoError("trace: cannot open '" + tmp_path_ + "' for writing");
  }
}

AtomicFileSink::~AtomicFileSink() {
  if (file_ == nullptr || closed_) return;
  file_->flush();
  const bool ok = file_->good();
  file_->close();
  if (ok && file_->good()) {
    try {
      commit_atomic(tmp_path_, final_path_, "trace");
    } catch (const IoError&) {
      // Best-effort path: the ".tmp" file stays, the final name is never
      // a torn artifact.
    }
  }
}

std::ostream* AtomicFileSink::stream() { return file_.get(); }

void AtomicFileSink::close() {
  if (file_ == nullptr || closed_) return;
  file_->flush();
  if (!file_->good()) {
    throw IoError("trace: write failure on '" + tmp_path_ +
                  "' (disk full or I/O error)");
  }
  file_->close();
  if (file_->fail()) {
    throw IoError("trace: failed to close '" + tmp_path_ + "'");
  }
  commit_atomic(tmp_path_, final_path_, "trace");
  closed_ = true;
}

}  // namespace synran::obs
