#include "async/core.hpp"

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>

#include "async/audit.hpp"
#include "common/check.hpp"

namespace synran {

namespace {

/// Wraps a PRNG coin source and counts the flips it serves — the metric
/// Aspnes's lower bound is about.
class CountingRandomCoins final : public CoinSource {
 public:
  explicit CountingRandomCoins(std::uint64_t seed) : rng_(seed) {}
  bool flip() override {
    ++count_;
    return rng_.flip();
  }
  std::uint64_t count() const { return count_; }

 private:
  // This *is* a CoinSource implementation (the production-path PRNG behind
  // flip()), so the direct generator is the point, not a leak around it.
  Xoshiro256 rng_;  // synran-lint: allow(coin-source)
  std::uint64_t count_ = 0;
};

// Event tags: kind in the top bits, payload (arena index / packed timer)
// below. One EventSource — the core itself — serves every kind.
constexpr std::uint64_t kKindShift = 60;
constexpr std::uint64_t kPayloadMask = (1ULL << kKindShift) - 1;
constexpr std::uint64_t kTagFabric = 1;   ///< timed delivery of arena[i]
constexpr std::uint64_t kTagRelease = 2;  ///< deadline release of arena[i]
constexpr std::uint64_t kTagTimer = 3;    ///< (process, timer-id) expiry

std::uint64_t tag_of(std::uint64_t kind, std::uint64_t payload) {
  return (kind << kKindShift) | payload;
}

[[noreturn]] void scheduler_violation(const std::string& what) {
  throw InvariantError("async scheduler: " + what);
}

/// The run-scoped engine. Owns the EventList, the message arena, the
/// adversary-held pool, and the observer/auditor plumbing; processes, the
/// scheduler, and the delay model are borrowed.
class AsyncCore final : public EventSource {
 public:
  AsyncCore(const AsyncProcessFactory& factory, const std::vector<Bit>& inputs,
            AsyncScheduler& scheduler, const AsyncEngineOptions& options)
      : inputs_(inputs), scheduler_(scheduler), opt_(options) {
    n_ = static_cast<std::uint32_t>(inputs.size());
    SYNRAN_REQUIRE(n_ >= 1, "need at least one process");
    SYNRAN_REQUIRE(opt_.t_budget < n_, "t must leave a live process");
    delay_ = opt_.delay != nullptr ? opt_.delay : &default_delay_;
    max_events_ = opt_.max_events != 0
                      ? opt_.max_events
                      : (opt_.max_steps <= kNever / 4 ? opt_.max_steps * 4
                                                      : kNever - 1);
    SeedSequence seeds(opt_.seed);
    procs_.reserve(n_);
    coins_.reserve(n_);
    for (ProcessId i = 0; i < n_; ++i) {
      procs_.push_back(factory.make(i, n_, opt_.t_budget, inputs[i]));
      coins_.push_back(std::make_unique<CountingRandomCoins>(seeds.stream(i)));
    }
    crashed_.assign(n_, false);
    views_.assign(n_, AsyncProcessView{});
    crash_budget_ = opt_.t_budget;
    interval_budget_open_ = crash_budget_;
  }

  AsyncRunResult run();

  void do_next_event(SimTime now, std::uint64_t tag) override;

 private:
  /// One message's lifetime in the fabric. Timed entries wait for their
  /// fabric event; Held entries sit in the scheduler-visible pool (with
  /// pool_pos tracking their index there); Done entries are spent —
  /// delivered, dropped, or suppressed — and any still-queued event for
  /// them dispatches as a no-op.
  struct InFlight {
    AsyncMessage msg;
    enum class State : std::uint8_t { Timed, Held, Done } state =
        State::Timed;
    std::size_t pool_pos = 0;
  };

  SimTime now() const { return events_.now(); }

  bool all_live_decided() const {
    for (ProcessId i = 0; i < n_; ++i)
      if (!crashed_[i] && !procs_[i]->decided()) return false;
    return true;
  }

  void route(const AsyncMessage& msg);
  void pump(ProcessId p, AsyncOutbox& out);
  void deliver_activation(const AsyncMessage& msg);
  void pool_swap_remove(std::size_t pos);
  void compact_held_done();
  void apply_scheduler_crash(const AsyncAction& action);
  void inject_crash(SimTime at, ProcessId victim);
  void inject_omission(SimTime at, const AsyncOmitAt& omit);
  void note_round_progress();
  void flush_interval();
  void harvest();

  std::vector<Bit> inputs_;
  AsyncScheduler& scheduler_;
  AsyncEngineOptions opt_;
  AdversaryDelay default_delay_;
  DelayModel* delay_ = nullptr;
  std::uint32_t n_ = 0;
  std::uint64_t max_events_ = 0;

  EventList events_;
  AsyncRunAuditor auditor_;
  std::vector<std::unique_ptr<AsyncProcess>> procs_;
  std::vector<std::unique_ptr<CountingRandomCoins>> coins_;
  std::vector<bool> crashed_;
  std::vector<AsyncProcessView> views_;
  std::uint32_t crash_budget_ = 0;

  std::vector<InFlight> arena_;
  /// The adversary-held pool, mirrored as (message, arena-id) pairs kept in
  /// lockstep. Delivery removal is swap-remove — schedulers must not rely
  /// on stable pending order — exactly the step engine's semantics, which
  /// is what keeps the adversary-held configuration bit-compatible with it.
  std::vector<AsyncMessage> held_view_;
  std::vector<std::size_t> held_ids_;

  std::vector<std::unique_ptr<Trigger>> triggers_;

  AsyncRunResult res_;
  bool stuck_ = false;

  // Round-analog observer intervals: one RoundObservation per value of the
  // live processes' maximum protocol round, flushed when it advances and at
  // run end, carrying the deliveries/crashes/omissions that happened while
  // it held. Sums across records therefore match the run_end totals, which
  // is the trace schema's cross-check invariant.
  std::uint32_t cur_round_ = 0;
  std::uint32_t interval_budget_open_ = 0;
  std::uint32_t interval_crashes_ = 0;
  std::uint64_t interval_delivered_ = 0;
  std::uint32_t interval_omissions_ = 0;
  std::uint64_t interval_omitted_ = 0;
};

void AsyncCore::route(const AsyncMessage& msg) {
  auditor_.on_send(now(), msg);
  if (crashed_[msg.to]) return;  // discarded at send, as ever
  const LinkDelay d = delay_->classify(msg, now());
  const std::size_t id = arena_.size();
  if (!d.held) {
    SYNRAN_CHECK_MSG(d.deliver_at >= now(),
                     "delay model scheduled a delivery in the past");
    arena_.push_back(InFlight{msg, InFlight::State::Timed, 0});
    events_.schedule_at(*this, d.deliver_at, tag_of(kTagFabric, id));
  } else {
    arena_.push_back(InFlight{msg, InFlight::State::Held, held_view_.size()});
    held_view_.push_back(msg);
    held_ids_.push_back(id);
    if (d.deadline != kNever) {
      SYNRAN_CHECK_MSG(d.deadline >= now(),
                       "delay model set a deadline in the past");
      events_.schedule_at(*this, d.deadline, tag_of(kTagRelease, id));
    }
  }
}

void AsyncCore::pump(ProcessId p, AsyncOutbox& out) {
  for (const auto& m : out.take()) route(m);
  for (const auto& t : out.take_timers()) {
    SYNRAN_REQUIRE(t.id < (1ULL << 32), "timer id must fit in 32 bits");
    events_.schedule_in(*this, t.delay,
                        tag_of(kTagTimer, (static_cast<std::uint64_t>(p) << 32) |
                                              t.id));
  }
  const bool was_decided = views_[p].decided;
  views_[p] = procs_[p]->view();
  if (!was_decided && views_[p].decided) res_.decision_time = now();
  note_round_progress();
}

void AsyncCore::deliver_activation(const AsyncMessage& msg) {
  auditor_.on_deliver(now(), msg);
  {
    AsyncOutbox out(msg.to, n_);
    procs_[msg.to]->on_message(msg, out, *coins_[msg.to]);
    pump(msg.to, out);
  }
  ++res_.messages_delivered;
  ++res_.steps;
  ++interval_delivered_;
}

void AsyncCore::pool_swap_remove(std::size_t pos) {
  held_view_[pos] = held_view_.back();
  held_view_.pop_back();
  held_ids_[pos] = held_ids_.back();
  held_ids_.pop_back();
  if (pos < held_ids_.size()) arena_[held_ids_[pos]].pool_pos = pos;
}

/// Order-preserving removal of every pool entry whose arena record was
/// marked Done (crash drops, purges, omission suppressions).
void AsyncCore::compact_held_done() {
  std::size_t w = 0;
  for (std::size_t r = 0; r < held_ids_.size(); ++r) {
    if (arena_[held_ids_[r]].state == InFlight::State::Done) continue;
    held_view_[w] = held_view_[r];
    held_ids_[w] = held_ids_[r];
    arena_[held_ids_[w]].pool_pos = w;
    ++w;
  }
  held_view_.resize(w);
  held_ids_.resize(w);
}

void AsyncCore::apply_scheduler_crash(const AsyncAction& action) {
  auditor_.on_crash(now(), action.victim);
  crashed_[action.victim] = true;
  --crash_budget_;
  ++res_.crashes;
  ++interval_crashes_;
  // Validate the drop list before touching anything: each index must name a
  // held message, belong to the victim, and appear at most once.
  std::vector<bool> dropped(held_view_.size(), false);
  for (const std::size_t idx : action.drop) {
    if (idx >= held_view_.size()) {
      std::ostringstream os;
      os << "drop index " << idx << " out of range (pending pool holds "
         << held_view_.size() << " messages)";
      scheduler_violation(os.str());
    }
    if (dropped[idx]) {
      std::ostringstream os;
      os << "duplicate drop index " << idx << " in crash of process "
         << action.victim;
      scheduler_violation(os.str());
    }
    if (held_view_[idx].from != action.victim) {
      std::ostringstream os;
      os << "drop index " << idx << " names a message from live process "
         << held_view_[idx].from << ", not crash victim " << action.victim;
      scheduler_violation(os.str());
    }
    dropped[idx] = true;
  }
  // Drop the selected in-transit messages of the victim, keep the rest;
  // also purge everything held that is addressed to it.
  for (std::size_t i = 0; i < held_ids_.size(); ++i) {
    if (dropped[i] || held_view_[i].to == action.victim)
      arena_[held_ids_[i]].state = InFlight::State::Done;
  }
  compact_held_done();
}

void AsyncCore::inject_crash(SimTime at, ProcessId victim) {
  auditor_.on_crash(at, victim);
  SYNRAN_CHECK_MSG(crash_budget_ > 0, "timetable crash past the budget");
  crashed_[victim] = true;
  --crash_budget_;
  ++res_.crashes;
  ++interval_crashes_;
  // A timetable crash is total: every undelivered message the victim sent
  // dies with it (timed or held), and held traffic addressed to it is
  // purged. Timed traffic addressed to it is discarded at its fabric event.
  for (auto& f : arena_) {
    if (f.state == InFlight::State::Done) continue;
    if (f.msg.from == victim)
      f.state = InFlight::State::Done;
    else if (f.state == InFlight::State::Held && f.msg.to == victim)
      f.state = InFlight::State::Done;
  }
  compact_held_done();
}

void AsyncCore::inject_omission(SimTime at, const AsyncOmitAt& omit) {
  std::uint64_t dropped = 0;
  for (auto& f : arena_) {
    if (dropped >= omit.max_drops) break;
    if (f.msg.from != omit.sender) continue;
    if (f.state == InFlight::State::Timed ||
        f.state == InFlight::State::Held) {
      f.state = InFlight::State::Done;
      ++dropped;
    }
  }
  auditor_.on_omission(at, omit.sender, dropped);
  compact_held_done();
  ++res_.omissions;
  res_.messages_omitted += dropped;
  ++interval_omissions_;
  interval_omitted_ += dropped;
}

void AsyncCore::note_round_progress() {
  std::uint32_t live_max = 0;
  for (ProcessId i = 0; i < n_; ++i)
    if (!crashed_[i]) live_max = std::max(live_max, views_[i].round);
  if (live_max > cur_round_) {
    flush_interval();
    cur_round_ = live_max;
  }
}

void AsyncCore::flush_interval() {
  const bool active = interval_delivered_ != 0 || interval_crashes_ != 0 ||
                      interval_omissions_ != 0 || interval_omitted_ != 0;
  if (opt_.observer != nullptr && active) {
    obs::RoundObservation round;
    round.round = cur_round_;
    round.alive = n_ - res_.crashes;
    round.halted = 0;
    round.senders = 0;
    round.deterministic = 0;
    for (ProcessId i = 0; i < n_; ++i) {
      if (crashed_[i]) continue;
      if (views_[i].decided) ++round.decided;
      if (views_[i].estimate == Bit::One)
        ++round.ones;
      else
        ++round.zeros;
    }
    round.budget_left = interval_budget_open_;
    round.crashes = interval_crashes_;
    round.delivered = interval_delivered_;
    round.omissions = interval_omissions_;
    round.omitted = interval_omitted_;
    opt_.observer->on_round_end(round);
  }
  interval_crashes_ = 0;
  interval_delivered_ = 0;
  interval_omissions_ = 0;
  interval_omitted_ = 0;
  interval_budget_open_ = crash_budget_;
}

void AsyncCore::do_next_event(SimTime now_time, std::uint64_t tag) {
  auditor_.note_time(now_time);
  const std::uint64_t kind = tag >> kKindShift;
  const std::uint64_t payload = tag & kPayloadMask;
  switch (kind) {
    case kTagFabric: {
      InFlight& f = arena_[payload];
      if (f.state != InFlight::State::Timed) return;  // dropped meanwhile
      const AsyncMessage msg = f.msg;
      f.state = InFlight::State::Done;
      if (crashed_[msg.to]) return;  // died with its recipient
      deliver_activation(msg);
      return;
    }
    case kTagRelease: {
      InFlight& f = arena_[payload];
      if (f.state != InFlight::State::Held) return;  // already handled
      const AsyncMessage msg = f.msg;
      pool_swap_remove(f.pool_pos);
      f.state = InFlight::State::Done;
      deliver_activation(msg);
      return;
    }
    case kTagTimer: {
      const auto p = static_cast<ProcessId>(payload >> 32);
      const std::uint64_t id = payload & 0xffffffffULL;
      if (crashed_[p]) return;  // timers die with their process
      ++res_.timers_fired;
      AsyncOutbox out(p, n_);
      procs_[p]->on_timer(id, out, *coins_[p]);
      pump(p, out);
      return;
    }
    default:
      SYNRAN_CHECK_MSG(false, "unknown event tag kind");
  }
}

void AsyncCore::harvest() {
  bool first = true;
  bool agree = true;
  bool any = false;
  for (ProcessId i = 0; i < n_; ++i) {
    if (crashed_[i]) continue;
    res_.max_round = std::max(res_.max_round, procs_[i]->view().round);
    res_.coin_flips += coins_[i]->count();
    if (!procs_[i]->decided()) continue;
    any = true;
    ++res_.decided_live;
    if (first) {
      res_.decision = procs_[i]->decision();
      first = false;
    } else if (procs_[i]->decision() != res_.decision) {
      agree = false;
    }
  }
  res_.agreement = any && agree;
  // Validity: a unanimous-input run must not decide the other value.
  if (any) {
    const bool all_zero =
        std::all_of(inputs_.begin(), inputs_.end(),
                    [](Bit b) { return b == Bit::Zero; });
    const bool all_one = std::all_of(inputs_.begin(), inputs_.end(),
                                     [](Bit b) { return b == Bit::One; });
    for (ProcessId i = 0; i < n_; ++i) {
      if (crashed_[i] || !procs_[i]->decided()) continue;
      const Bit d = procs_[i]->decision();
      if ((all_zero && d == Bit::One) || (all_one && d == Bit::Zero))
        res_.validity = false;
    }
  }
  res_.end_time = now();
  if (opt_.observer != nullptr) {
    flush_interval();
    obs::RunObservation end;
    end.terminated = res_.terminated;
    end.agreement = res_.agreement;
    end.has_decision = any;
    end.decision = res_.decision == Bit::One ? 1 : 0;
    end.rounds_to_decision = res_.max_round;
    end.rounds_to_halt = res_.max_round;
    end.crashes_total = res_.crashes;
    end.messages_delivered = res_.messages_delivered;
    end.omissions_total = res_.omissions;
    end.messages_omitted = res_.messages_omitted;
    end.survivors = n_ - res_.crashes;
    opt_.observer->on_run_end(end);
  } else {
    flush_interval();
  }
  auditor_.on_end(res_.crashes, res_.omissions);
}

AsyncRunResult AsyncCore::run() {
  auditor_.begin(n_, opt_.t_budget, opt_.omission_budget);
  delay_->begin(n_);
  scheduler_.begin(n_, opt_.t_budget);
  if (opt_.observer != nullptr) {
    obs::RunInfo info;
    info.n = n_;
    info.t_budget = opt_.t_budget;
    info.per_round_cap = 0;
    info.seed = opt_.seed;
    info.omission_budget = opt_.omission_budget;
    info.omission_round_cap = 0;
    opt_.observer->on_run_begin(info);
  }

  // Arm the fault timetable as Triggers on the shared clock, so injections
  // interleave deterministically with deliveries and timers.
  if (opt_.faults != nullptr) {
    for (const auto& c : opt_.faults->crashes) {
      triggers_.push_back(std::make_unique<Trigger>(
          events_, [this, victim = c.victim](SimTime t, std::uint64_t) {
            if (!crashed_[victim]) inject_crash(t, victim);
          }));
      triggers_.back()->arm_at(c.at);
    }
    for (const auto& o : opt_.faults->omissions) {
      triggers_.push_back(std::make_unique<Trigger>(
          events_, [this, omit = o](SimTime t, std::uint64_t) {
            inject_omission(t, omit);
          }));
      triggers_.back()->arm_at(o.at);
    }
  }

  for (ProcessId i = 0; i < n_; ++i) {
    AsyncOutbox out(i, n_);
    procs_[i]->start(out, *coins_[i]);
    pump(i, out);
  }

  for (;;) {
    if (res_.steps >= opt_.max_steps) break;  // gave up (capped)
    if (all_live_decided()) {
      res_.terminated = true;
      break;
    }
    if (events_.dispatched() >= max_events_) break;  // timer livelock guard

    if (!held_view_.empty()) {
      AsyncWorld world(held_view_, views_, crashed_, crash_budget_,
                       res_.steps);
      const AsyncAction action = scheduler_.step(world);
      if (action.kind == AsyncAction::Kind::Crash) {
        apply_scheduler_crash(action);
        continue;
      }
      if (action.kind == AsyncAction::Kind::Wait) {
        // The adversary yields to the clock. With nothing scheduled the
        // system is starved for good: end the run undecided.
        if (events_.empty()) break;
        if (events_.next_time() > opt_.max_time) break;  // out of time
        events_.run_next();
        continue;
      }
      SYNRAN_CHECK_MSG(action.index < held_view_.size(),
                       "scheduler delivered an invalid message");
      const AsyncMessage msg = held_view_[action.index];
      // O(1) removal; schedulers must not rely on stable pending order (the
      // adversary model only cares which message is picked, not how the
      // engine stores the rest).
      arena_[held_ids_[action.index]].state = InFlight::State::Done;
      pool_swap_remove(action.index);
      deliver_activation(msg);
      continue;
    }

    if (!events_.empty()) {
      if (events_.next_time() > opt_.max_time) break;  // out of time
      events_.run_next();
      continue;
    }
    break;  // nothing in transit or scheduled and undecided: stuck
  }

  harvest();
  return res_;
}

}  // namespace

AsyncRunResult run_async(const AsyncProcessFactory& factory,
                         const std::vector<Bit>& inputs,
                         AsyncScheduler& scheduler,
                         const AsyncEngineOptions& options) {
  AsyncCore core(factory, inputs, scheduler, options);
  return core.run();
}

}  // namespace synran
