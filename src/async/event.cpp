#include "async/event.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"

namespace synran {

SimTime EventList::next_time() const {
  SYNRAN_REQUIRE(!heap_.empty(), "next_time() on an empty event list");
  return heap_.front().time;
}

void EventList::schedule_at(EventSource& source, SimTime at,
                            std::uint64_t tag) {
  SYNRAN_REQUIRE(at >= now_, "cannot schedule an event in the past");
  SYNRAN_REQUIRE(at != kNever, "kNever is not a schedulable instant");
  heap_.push_back(Entry{at, next_seq_++, &source, tag});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

void EventList::schedule_in(EventSource& source, SimTime delay,
                            std::uint64_t tag) {
  const SimTime at =
      delay >= kNever - now_ ? kNever - 1 : now_ + delay;  // saturate
  schedule_at(source, at, tag);
}

bool EventList::run_next() {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const Entry e = heap_.back();
  heap_.pop_back();
  now_ = e.time;
  ++dispatched_;
  e.source->do_next_event(e.time, e.tag);
  return true;
}

Trigger::Trigger(EventList& list, Action action)
    : list_(&list), action_(std::move(action)) {
  SYNRAN_REQUIRE(action_ != nullptr, "Trigger needs an action");
}

void Trigger::arm_at(SimTime at, std::uint64_t tag) {
  list_->schedule_at(*this, at, tag);
}

void Trigger::arm_in(SimTime delay, std::uint64_t tag) {
  list_->schedule_in(*this, delay, tag);
}

void Trigger::do_next_event(SimTime now, std::uint64_t tag) {
  action_(now, tag);
}

}  // namespace synran
