#include "async/scheduler.hpp"

#include "common/check.hpp"

namespace synran {

AsyncAction FifoScheduler::step(const AsyncWorld& world) {
  SYNRAN_CHECK(!world.pending().empty());
  return {AsyncAction::Kind::Deliver, 0, 0, {}};
}

AsyncAction RandomScheduler::step(const AsyncWorld& world) {
  SYNRAN_CHECK(!world.pending().empty());
  return {AsyncAction::Kind::Deliver, rng_.below(world.pending().size()), 0,
          {}};
}

void LaggardScheduler::begin(std::uint32_t n, std::uint32_t t) {
  t_ = t;
  lagging_.assign(n, false);
  // Lag a fixed set of up to t processes (rotating would also work; a fixed
  // set maximizes the starvation effect on waiting thresholds).
  for (std::uint32_t i = 0; i < n && i < t; ++i) lagging_[i] = true;
}

AsyncAction LaggardScheduler::step(const AsyncWorld& world) {
  const auto pending = world.pending();
  SYNRAN_CHECK(!pending.empty());

  // Occasionally spend a crash on the process with the highest round — the
  // one pulling the system forward — dropping all its in-transit traffic.
  if (world.crash_budget() > 0 && rng_.uniform() < 0.02) {
    ProcessId victim = world.n();
    std::uint32_t best_round = 0;
    for (ProcessId i = 0; i < world.n(); ++i) {
      if (world.crashed(i)) continue;
      const auto v = world.view(i);
      if (!v.decided && v.round >= best_round) {
        best_round = v.round;
        victim = i;
      }
    }
    if (victim < world.n()) {
      AsyncAction act;
      act.kind = AsyncAction::Kind::Crash;
      act.victim = victim;
      for (std::size_t i = 0; i < pending.size(); ++i)
        if (pending[i].from == victim) act.drop.push_back(i);
      return act;
    }
  }

  // Deliver non-laggard traffic first; laggard messages only when nothing
  // else remains (asynchrony lets the adversary delay them arbitrarily).
  for (std::size_t i = 0; i < pending.size(); ++i)
    if (!lagging_[pending[i].from])
      return {AsyncAction::Kind::Deliver, i, 0, {}};
  return {AsyncAction::Kind::Deliver, 0, 0, {}};
}

AsyncAction StallScheduler::step(const AsyncWorld& /*world*/) {
  return {AsyncAction::Kind::Wait, 0, 0, {}};
}

}  // namespace synran
