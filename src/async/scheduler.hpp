// Scheduler (adversary) interface for the asynchronous engine.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "async/process.hpp"
#include "common/rng.hpp"

namespace synran {

/// What the scheduler sees each step: the in-transit messages, the
/// processes' full state, and its remaining crash budget.
class AsyncWorld {
 public:
  AsyncWorld(std::span<const AsyncMessage> pending,
             std::span<const AsyncProcessView> views,
             const std::vector<bool>& crashed, std::uint32_t crash_budget,
             std::uint64_t step)
      : pending_(pending),
        views_(views),
        crashed_(crashed),
        crash_budget_(crash_budget),
        step_(step) {}

  std::span<const AsyncMessage> pending() const { return pending_; }
  const AsyncProcessView& view(ProcessId p) const { return views_[p]; }
  std::uint32_t n() const {
    return static_cast<std::uint32_t>(views_.size());
  }
  bool crashed(ProcessId p) const { return crashed_[p]; }
  std::uint32_t crash_budget() const { return crash_budget_; }
  std::uint64_t step() const { return step_; }

 private:
  std::span<const AsyncMessage> pending_;
  std::span<const AsyncProcessView> views_;
  const std::vector<bool>& crashed_;
  std::uint32_t crash_budget_;
  std::uint64_t step_;
};

/// One scheduling decision.
struct AsyncAction {
  enum class Kind : std::uint8_t {
    Deliver,  ///< deliver pending()[index]
    Crash,    ///< crash `victim`, dropping its in-transit messages listed
              ///< in drop (indices into pending(); each must belong to the
              ///< victim and appear at most once — the engine rejects
              ///< out-of-range or duplicate indices with InvariantError)
    Wait,     ///< decline to act; let simulated time advance to the next
              ///< scheduled event (a deadline, timer, or timed delivery).
              ///< Waiting with nothing scheduled ends the run undecided —
              ///< the adversary may starve a fully-asynchronous system.
  };
  Kind kind = Kind::Deliver;
  std::size_t index = 0;
  ProcessId victim = 0;
  std::vector<std::size_t> drop;
};

class AsyncScheduler {
 public:
  virtual ~AsyncScheduler() = default;
  virtual void begin(std::uint32_t /*n*/, std::uint32_t /*t*/) {}
  /// Must return a Deliver of a valid pending index (to a live process), a
  /// Crash within budget, or a Wait. Called only while held messages exist.
  virtual AsyncAction step(const AsyncWorld& world) = 0;
  virtual const char* name() const = 0;
};

/// Delivers in send order — the benign round-robin-ish schedule.
class FifoScheduler final : public AsyncScheduler {
 public:
  AsyncAction step(const AsyncWorld& world) override;
  const char* name() const override { return "fifo"; }
};

/// Delivers a uniformly random pending message.
class RandomScheduler final : public AsyncScheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed) : rng_(seed) {}
  AsyncAction step(const AsyncWorld& world) override;
  const char* name() const override { return "random"; }

 private:
  // Scheduler randomness is *adversary-side*: it picks the schedule, not the
  // protocol's coins, so it is outside the CoinSource enumeration contract.
  Xoshiro256 rng_;  // synran-lint: allow(coin-source)
};

/// Adaptive: starves the messages of a rotating laggard set of up to t
/// processes (delivering their traffic only when nothing else is pending)
/// and, when a process is about to push the system toward unanimity, crashes
/// it. A budget-disciplined rendering of the classic async adversary.
class LaggardScheduler final : public AsyncScheduler {
 public:
  explicit LaggardScheduler(std::uint64_t seed) : rng_(seed) {}
  void begin(std::uint32_t n, std::uint32_t t) override;
  AsyncAction step(const AsyncWorld& world) override;
  const char* name() const override { return "laggard"; }

 private:
  // Adversary-side randomness, as above.
  Xoshiro256 rng_;  // synran-lint: allow(coin-source)
  std::uint32_t t_ = 0;
  std::vector<bool> lagging_;
};

/// Maximally patient: always Waits, so every held message is delivered only
/// when a deadline forces it. Under GstDelay this is the extremal
/// partial-synchrony adversary — each message arrives exactly at
/// max(send, GST) + bound — and the run's decision time directly measures
/// the GST's cost. Under pure asynchrony (no deadlines) it starves the
/// system outright.
class StallScheduler final : public AsyncScheduler {
 public:
  AsyncAction step(const AsyncWorld& world) override;
  const char* name() const override { return "stall"; }
};

}  // namespace synran
