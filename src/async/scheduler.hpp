// Scheduler (adversary) interface for the asynchronous engine.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "async/process.hpp"
#include "common/rng.hpp"

namespace synran {

/// What the scheduler sees each step: the in-transit messages, the
/// processes' full state, and its remaining crash budget.
class AsyncWorld {
 public:
  AsyncWorld(std::span<const AsyncMessage> pending,
             std::span<const AsyncProcessView> views,
             const std::vector<bool>& crashed, std::uint32_t crash_budget,
             std::uint64_t step)
      : pending_(pending),
        views_(views),
        crashed_(crashed),
        crash_budget_(crash_budget),
        step_(step) {}

  std::span<const AsyncMessage> pending() const { return pending_; }
  const AsyncProcessView& view(ProcessId p) const { return views_[p]; }
  std::uint32_t n() const {
    return static_cast<std::uint32_t>(views_.size());
  }
  bool crashed(ProcessId p) const { return crashed_[p]; }
  std::uint32_t crash_budget() const { return crash_budget_; }
  std::uint64_t step() const { return step_; }

 private:
  std::span<const AsyncMessage> pending_;
  std::span<const AsyncProcessView> views_;
  const std::vector<bool>& crashed_;
  std::uint32_t crash_budget_;
  std::uint64_t step_;
};

/// One scheduling decision.
struct AsyncAction {
  enum class Kind : std::uint8_t {
    Deliver,  ///< deliver pending()[index]
    Crash,    ///< crash `victim`, dropping its in-transit messages listed
              ///< in drop (indices into pending())
  };
  Kind kind = Kind::Deliver;
  std::size_t index = 0;
  ProcessId victim = 0;
  std::vector<std::size_t> drop;
};

class AsyncScheduler {
 public:
  virtual ~AsyncScheduler() = default;
  virtual void begin(std::uint32_t /*n*/, std::uint32_t /*t*/) {}
  /// Must return a Deliver of a valid pending index (to a live process), or
  /// a Crash within budget. Called only while deliverable messages exist.
  virtual AsyncAction step(const AsyncWorld& world) = 0;
  virtual const char* name() const = 0;
};

/// Delivers in send order — the benign round-robin-ish schedule.
class FifoScheduler final : public AsyncScheduler {
 public:
  AsyncAction step(const AsyncWorld& world) override;
  const char* name() const override { return "fifo"; }
};

/// Delivers a uniformly random pending message.
class RandomScheduler final : public AsyncScheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed) : rng_(seed) {}
  AsyncAction step(const AsyncWorld& world) override;
  const char* name() const override { return "random"; }

 private:
  // Scheduler randomness is *adversary-side*: it picks the schedule, not the
  // protocol's coins, so it is outside the CoinSource enumeration contract.
  Xoshiro256 rng_;  // synran-lint: allow(coin-source)
};

/// Adaptive: starves the messages of a rotating laggard set of up to t
/// processes (delivering their traffic only when nothing else is pending)
/// and, when a process is about to push the system toward unanimity, crashes
/// it. A budget-disciplined rendering of the classic async adversary.
class LaggardScheduler final : public AsyncScheduler {
 public:
  explicit LaggardScheduler(std::uint64_t seed) : rng_(seed) {}
  void begin(std::uint32_t n, std::uint32_t t) override;
  AsyncAction step(const AsyncWorld& world) override;
  const char* name() const override { return "laggard"; }

 private:
  // Adversary-side randomness, as above.
  Xoshiro256 rng_;  // synran-lint: allow(coin-source)
  std::uint32_t t_ = 0;
  std::vector<bool> lagging_;
};

}  // namespace synran
