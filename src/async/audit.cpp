#include "async/audit.hpp"

#include <sstream>

#include "common/check.hpp"

namespace synran {

namespace {

[[noreturn]] void violation(const std::string& what) {
  throw InvariantError("async audit: " + what);
}

std::string at(SimTime now) {
  std::ostringstream os;
  os << " at t=" << now;
  return os.str();
}

}  // namespace

void AsyncRunAuditor::begin(std::uint32_t n, std::uint32_t t_budget,
                            std::uint32_t omission_budget) {
  n_ = n;
  t_budget_ = t_budget;
  omission_budget_ = omission_budget;
  crashes_ = 0;
  omissions_ = 0;
  last_time_ = 0;
  crashed_.assign(n, false);
}

void AsyncRunAuditor::note_time(SimTime now) {
  if (now < last_time_) {
    std::ostringstream os;
    os << "event time moved backwards: t=" << now << " after t=" << last_time_;
    violation(os.str());
  }
  last_time_ = now;
}

void AsyncRunAuditor::on_crash(SimTime now, ProcessId victim) {
  note_time(now);
  if (victim >= n_)
    violation("crash names process " + std::to_string(victim) +
              " outside 0.." + std::to_string(n_ - 1) + at(now));
  if (crashed_[victim])
    violation("process " + std::to_string(victim) + " crashed twice" +
              at(now));
  if (crashes_ >= t_budget_)
    violation("crash budget exceeded: " + std::to_string(t_budget_) +
              " allowed, crashing process " + std::to_string(victim) +
              at(now));
  crashed_[victim] = true;
  ++crashes_;
}

void AsyncRunAuditor::on_deliver(SimTime now, const AsyncMessage& msg) {
  note_time(now);
  if (msg.to >= n_ || msg.from >= n_)
    violation("delivery with out-of-range endpoints" + at(now));
  if (crashed_[msg.to])
    violation("delivery to crashed process " + std::to_string(msg.to) +
              " (from " + std::to_string(msg.from) + ")" + at(now));
}

void AsyncRunAuditor::on_send(SimTime now, const AsyncMessage& msg) {
  note_time(now);
  if (msg.from >= n_ || msg.to >= n_)
    violation("send with out-of-range endpoints" + at(now));
  if (crashed_[msg.from])
    violation("crashed process " + std::to_string(msg.from) + " sent" +
              at(now));
}

void AsyncRunAuditor::on_omission(SimTime now, ProcessId sender,
                                  std::uint64_t /*dropped*/) {
  note_time(now);
  if (sender >= n_)
    violation("omission names process " + std::to_string(sender) +
              " outside 0.." + std::to_string(n_ - 1) + at(now));
  if (crashed_[sender])
    violation("omission against crashed process " + std::to_string(sender) +
              at(now));
  if (omissions_ >= omission_budget_)
    violation("omission budget exceeded: " + std::to_string(omission_budget_) +
              " injections allowed" + at(now));
  ++omissions_;
}

void AsyncRunAuditor::on_end(std::uint32_t crashes_reported,
                             std::uint32_t omissions_reported) const {
  if (crashes_reported != crashes_)
    violation("engine reported " + std::to_string(crashes_reported) +
              " crashes but " + std::to_string(crashes_) + " were audited");
  if (omissions_reported != omissions_)
    violation("engine reported " + std::to_string(omissions_reported) +
              " omissions but " + std::to_string(omissions_) +
              " were audited");
}

}  // namespace synran
