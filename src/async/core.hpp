// The asynchronous execution engine, rebuilt event-driven.
//
// One central time-ordered EventList drives everything: timed message
// deliveries (per-link DelayModel), deadline releases of adversary-held
// messages (partial synchrony), protocol timers, and Trigger-armed fault
// injections. The adversarial scheduler is consulted whenever held messages
// exist, so schedulers, delay models, and crash/omission injection compose
// instead of replacing each other.
//
// Reliability contract (unchanged from the step engine): a message is
// delivered unless its sender was crashed (crashing lets the adversary drop
// any subset of the sender's held traffic; a timetable crash drops all of
// the victim's undelivered traffic) or an omission injection suppressed it.
// Messages to crashed processes are discarded.
//
// Back compatibility: with no DelayModel configured every message is
// adversary-held with no deadline, and the run is step-for-step identical
// to the pre-event-loop engine — same scheduler consultation order, same
// swap-remove pending-pool semantics, same per-process coin streams.
#pragma once

#include <cstdint>
#include <vector>

#include "async/delay.hpp"
#include "async/event.hpp"
#include "async/process.hpp"
#include "async/scheduler.hpp"
#include "obs/observer.hpp"

namespace synran {

/// A crash injected at a fixed instant of simulated time, dropping all of
/// the victim's undelivered traffic. Composes with any delay model via a
/// Trigger on the central EventList (under the pure adversary-held model
/// time never advances past 0, so use scheduler crashes there instead).
struct AsyncCrashAt {
  SimTime at = 0;
  ProcessId victim = 0;
};

/// An omission burst injected at a fixed instant: up to `max_drops` of the
/// sender's in-flight messages (send order) are suppressed; the sender
/// stays alive. Each fired injection spends one omission directive against
/// AsyncEngineOptions::omission_budget.
struct AsyncOmitAt {
  SimTime at = 0;
  ProcessId sender = 0;
  std::uint64_t max_drops = 0;
};

struct AsyncFaultTimetable {
  std::vector<AsyncCrashAt> crashes;
  std::vector<AsyncOmitAt> omissions;
};

struct AsyncEngineOptions {
  std::uint32_t t_budget = 0;     ///< processes the adversary may crash
  std::uint64_t max_steps = 2000000;  ///< deliveries before giving up
  std::uint64_t seed = 1;
  /// Per-link delay policy; borrowed, nullptr = adversary-held everything
  /// (the strong asynchronous adversary, and the pre-event-loop behavior).
  DelayModel* delay = nullptr;
  /// Wall of simulated time: the run ends undecided when the next event
  /// lies beyond it. kNever = unbounded.
  SimTime max_time = kNever;
  /// Non-delivery events (timers, releases) before giving up; 0 derives
  /// 4 * max_steps. Guards against timer-only livelock.
  std::uint64_t max_events = 0;
  /// Timed fault injections; borrowed. Scheduler crashes share the same
  /// t_budget; omission injections spend omission_budget.
  const AsyncFaultTimetable* faults = nullptr;
  std::uint32_t omission_budget = 0;  ///< 0 = omissions forbidden
  /// Observer for run_begin / round-analog / run_end events (both trace
  /// formats work unchanged); borrowed, may be null.
  obs::EngineObserver* observer = nullptr;
};

struct AsyncRunResult {
  bool terminated = false;  ///< every live process decided
  /// Live processes that decided; agreement is vacuous when this is 0.
  std::uint32_t decided_live = 0;
  bool agreement = false;
  bool validity = true;  ///< unanimous-input runs decided the common input
  Bit decision = Bit::Zero;
  std::uint64_t steps = 0;  ///< deliveries (the scheduler-step count)
  /// Messages handed to a recipient's on_message — the same event the sync
  /// engine's RunResult::messages_delivered counts, so the two models'
  /// message complexities compare directly (examples/sync_vs_async.cpp).
  std::uint64_t messages_delivered = 0;
  std::uint32_t max_round = 0;   ///< highest protocol round reached
  std::uint64_t coin_flips = 0;  ///< total across processes
  std::uint32_t crashes = 0;
  std::uint32_t omissions = 0;          ///< omission injections fired
  std::uint64_t messages_omitted = 0;   ///< messages suppressed by them
  std::uint64_t timers_fired = 0;
  SimTime end_time = 0;       ///< simulated instant the run ended
  SimTime decision_time = 0;  ///< when the last live process decided
};

AsyncRunResult run_async(const AsyncProcessFactory& factory,
                         const std::vector<Bit>& inputs,
                         AsyncScheduler& scheduler,
                         const AsyncEngineOptions& options);

}  // namespace synran
