#include "async/benor.hpp"

#include "common/check.hpp"

namespace synran {

namespace {
constexpr Payload kProposalFlag = 1ULL << 2;
constexpr Payload kBotValue = 1ULL << 3;
}  // namespace

Payload BenOrAsyncProcess::encode(const Wire& w) {
  Payload p = static_cast<Payload>(w.round) << 32;
  if (w.proposal) p |= kProposalFlag;
  if (w.value < 0) {
    SYNRAN_REQUIRE(w.proposal, "only proposals may carry ⊥");
    p |= kBotValue;
  } else {
    p |= payload::of_bit(w.value ? Bit::One : Bit::Zero);
  }
  return p;
}

BenOrAsyncProcess::Wire BenOrAsyncProcess::decode(Payload p) {
  Wire w;
  w.round = static_cast<std::uint32_t>(p >> 32);
  w.proposal = (p & kProposalFlag) != 0;
  if (p & kBotValue)
    w.value = -1;
  else
    w.value = (p & payload::kSupports1) ? 1 : 0;
  return w;
}

BenOrAsyncProcess::BenOrAsyncProcess(ProcessId id, std::uint32_t n,
                                     std::uint32_t t, Bit input,
                                     const BenOrOptions& options)
    : id_(id), n_(n), t_(t), opt_(options), b_(input) {
  SYNRAN_REQUIRE(n >= 1, "need at least one process");
  SYNRAN_REQUIRE(2 * t < n, "Ben-Or requires t < n/2");
}

void BenOrAsyncProcess::broadcast_phase(AsyncOutbox& out, Payload p) {
  last_broadcast_ = p;
  out.broadcast(p);
}

void BenOrAsyncProcess::start(AsyncOutbox& out, CoinSource& /*coins*/) {
  broadcast_phase(out, encode({false, round_, to_int(b_)}));
  // One timer chain per process: each expiry rebroadcasts the latest phase
  // message and re-arms, until the process falls silent.
  if (opt_.retransmit_every != 0) out.set_timer(opt_.retransmit_every);
}

void BenOrAsyncProcess::on_timer(std::uint64_t /*id*/, AsyncOutbox& out,
                                 CoinSource& /*coins*/) {
  if (silent_ || opt_.retransmit_every == 0) return;  // chain ends
  out.broadcast(last_broadcast_);
  out.set_timer(opt_.retransmit_every);
}

void BenOrAsyncProcess::on_message(const AsyncMessage& msg, AsyncOutbox& out,
                                   CoinSource& coins) {
  if (silent_) return;  // decided and done helping
  const Wire w = decode(msg.payload);
  if (w.round < round_ ||
      (w.round == round_ && !w.proposal && in_proposal_phase_)) {
    // Stale: we already closed that wait. (Our own later-phase broadcasts
    // can't be stale for ourselves; laggards' old traffic is simply spare.)
    return;
  }
  Tally& tally = tallies_[{w.round, w.proposal}];
  if (tally.seen.empty()) tally.seen.assign(n_, false);
  if (tally.seen[msg.from]) return;  // retransmitted duplicate
  tally.seen[msg.from] = true;
  if (w.value < 0)
    ++tally.bots;
  else if (w.value == 1)
    ++tally.ones;
  else
    ++tally.zeros;

  try_advance(out, coins);
}

void BenOrAsyncProcess::try_advance(AsyncOutbox& out, CoinSource& coins) {
  for (;;) {
    const std::uint32_t quorum = n_ - t_;
    if (!in_proposal_phase_) {
      const Tally& reports = tallies_[{round_, false}];
      if (reports.total() < quorum) return;
      // Strict majority of all n processes backs a value -> propose it.
      int prop = -1;
      if (2 * reports.ones > n_)
        prop = 1;
      else if (2 * reports.zeros > n_)
        prop = 0;
      in_proposal_phase_ = true;
      broadcast_phase(out, encode({true, round_, prop}));
      continue;
    }

    const Tally& props = tallies_[{round_, true}];
    if (props.total() < quorum) return;
    // Crash faults + the majority rule make conflicting proposals
    // impossible; the engine would surface disagreement if this failed.
    if (!decided_) {
      if (props.ones >= t_ + 1) {
        b_ = Bit::One;
        decided_ = true;
      } else if (props.zeros >= t_ + 1) {
        b_ = Bit::Zero;
        decided_ = true;
      } else if (props.ones > 0) {
        b_ = Bit::One;
      } else if (props.zeros > 0) {
        b_ = Bit::Zero;
      } else {
        b_ = bit_of(coins.flip());
      }
    }
    // Next round. Decided processes keep echoing for two rounds so every
    // laggard (at most one round behind) can finish, then fall silent.
    if (decided_ && help_rounds_left_-- == 0) {
      silent_ = true;
      return;
    }
    tallies_.erase({round_, false});
    tallies_.erase({round_, true});
    ++round_;
    in_proposal_phase_ = false;
    broadcast_phase(out, encode({false, round_, to_int(b_)}));
  }
}

}  // namespace synran
