#include "async/engine.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace synran {

namespace {

/// Wraps a PRNG coin source and counts the flips it serves — the metric
/// Aspnes's lower bound is about.
class CountingRandomCoins final : public CoinSource {
 public:
  explicit CountingRandomCoins(std::uint64_t seed) : rng_(seed) {}
  bool flip() override {
    ++count_;
    return rng_.flip();
  }
  std::uint64_t count() const { return count_; }

 private:
  // This *is* a CoinSource implementation (the production-path PRNG behind
  // flip()), so the direct generator is the point, not a leak around it.
  Xoshiro256 rng_;  // synran-lint: allow(coin-source)
  std::uint64_t count_ = 0;
};

}  // namespace

AsyncRunResult run_async(const AsyncProcessFactory& factory,
                         const std::vector<Bit>& inputs,
                         AsyncScheduler& scheduler,
                         const AsyncEngineOptions& options) {
  const auto n = static_cast<std::uint32_t>(inputs.size());
  SYNRAN_REQUIRE(n >= 1, "need at least one process");
  SYNRAN_REQUIRE(options.t_budget < n, "t must leave a live process");

  SeedSequence seeds(options.seed);
  std::vector<std::unique_ptr<AsyncProcess>> procs;
  std::vector<std::unique_ptr<CountingRandomCoins>> coins;
  procs.reserve(n);
  for (ProcessId i = 0; i < n; ++i) {
    procs.push_back(factory.make(i, n, options.t_budget, inputs[i]));
    coins.push_back(std::make_unique<CountingRandomCoins>(seeds.stream(i)));
  }

  std::vector<AsyncMessage> pending;
  std::vector<bool> crashed(n, false);
  std::vector<AsyncProcessView> views(n);
  std::uint32_t crash_budget = options.t_budget;

  const auto pump = [&](ProcessId p, AsyncOutbox& out) {
    auto msgs = out.take();
    for (auto& m : msgs) {
      if (!crashed[m.to]) pending.push_back(m);
    }
    views[p] = procs[p]->view();
  };

  scheduler.begin(n, options.t_budget);
  for (ProcessId i = 0; i < n; ++i) {
    AsyncOutbox out(i, n);
    procs[i]->start(out, *coins[i]);
    pump(i, out);
  }

  AsyncRunResult res;
  const auto all_live_decided = [&] {
    for (ProcessId i = 0; i < n; ++i)
      if (!crashed[i] && !procs[i]->decided()) return false;
    return true;
  };

  while (res.steps < options.max_steps) {
    if (all_live_decided()) {
      res.terminated = true;
      break;
    }
    // Deliverable = pending to a live process (dead recipients are purged on
    // crash, so everything pending is deliverable).
    if (pending.empty()) break;  // nothing in transit and undecided: stuck

    AsyncWorld world(pending, views, crashed, crash_budget, res.steps);
    AsyncAction action = scheduler.step(world);

    if (action.kind == AsyncAction::Kind::Crash) {
      SYNRAN_CHECK_MSG(crash_budget > 0, "scheduler exceeded crash budget");
      SYNRAN_CHECK_MSG(action.victim < n && !crashed[action.victim],
                       "scheduler crashed an invalid process");
      --crash_budget;
      ++res.crashes;
      crashed[action.victim] = true;
      // Drop the selected in-transit messages of the victim, keep the rest;
      // also purge everything addressed to it.
      std::vector<bool> drop(pending.size(), false);
      for (auto idx : action.drop) {
        SYNRAN_CHECK_MSG(idx < pending.size(), "drop index out of range");
        SYNRAN_CHECK_MSG(pending[idx].from == action.victim,
                         "scheduler dropped a live process's message");
        drop[idx] = true;
      }
      std::vector<AsyncMessage> kept;
      kept.reserve(pending.size());
      for (std::size_t i = 0; i < pending.size(); ++i) {
        if (drop[i] || pending[i].to == action.victim) continue;
        kept.push_back(pending[i]);
      }
      pending.swap(kept);
      continue;
    }

    SYNRAN_CHECK_MSG(action.index < pending.size(),
                     "scheduler delivered an invalid message");
    const AsyncMessage msg = pending[action.index];
    // O(1) removal; schedulers must not rely on stable pending order (the
    // adversary model only cares which message is picked, not how the
    // engine stores the rest).
    pending[action.index] = pending.back();
    pending.pop_back();
    SYNRAN_CHECK(!crashed[msg.to]);
    {
      AsyncOutbox out(msg.to, n);
      procs[msg.to]->on_message(msg, out, *coins[msg.to]);
      pump(msg.to, out);
    }
    ++res.messages_delivered;
    ++res.steps;
  }

  // Harvest.
  bool first = true;
  bool agree = true;
  bool any = false;
  for (ProcessId i = 0; i < n; ++i) {
    if (crashed[i]) continue;
    res.max_round = std::max(res.max_round, procs[i]->view().round);
    res.coin_flips += coins[i]->count();
    if (!procs[i]->decided()) continue;
    any = true;
    if (first) {
      res.decision = procs[i]->decision();
      first = false;
    } else if (procs[i]->decision() != res.decision) {
      agree = false;
    }
  }
  res.agreement = any && agree;
  return res;
}

}  // namespace synran
