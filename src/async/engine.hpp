// The asynchronous execution engine: a single event loop driven by the
// scheduler. Reliability contract: a message is delivered unless its sender
// was crashed (crashing lets the adversary drop any subset of the sender's
// in-transit traffic). Messages to crashed processes are discarded.
#pragma once

#include <cstdint>
#include <vector>

#include "async/process.hpp"
#include "async/scheduler.hpp"

namespace synran {

struct AsyncEngineOptions {
  std::uint32_t t_budget = 0;     ///< processes the scheduler may crash
  std::uint64_t max_steps = 2000000;  ///< deliveries before giving up
  std::uint64_t seed = 1;
};

struct AsyncRunResult {
  bool terminated = false;  ///< every live process decided
  bool agreement = false;
  Bit decision = Bit::Zero;
  std::uint64_t steps = 0;        ///< scheduler delivery steps taken
  /// Messages handed to a recipient's on_message — the same event the sync
  /// engine's RunResult::messages_delivered counts, so the two models'
  /// message complexities compare directly (examples/sync_vs_async.cpp).
  std::uint64_t messages_delivered = 0;
  std::uint32_t max_round = 0;    ///< highest protocol round reached
  std::uint64_t coin_flips = 0;   ///< total across processes
  std::uint32_t crashes = 0;
};

AsyncRunResult run_async(const AsyncProcessFactory& factory,
                         const std::vector<Bit>& inputs,
                         AsyncScheduler& scheduler,
                         const AsyncEngineOptions& options);

}  // namespace synran
