// The event-driven simulation core's clock and dispatch queue.
//
// Everything the asynchronous engine does — message deliveries, timer
// expiries, partial-synchrony deadline releases, injected faults — is an
// event on one central time-ordered EventList (the htsim pattern: a single
// heap of (time, source) pairs drives arbitrarily many event-source
// objects). Determinism is non-negotiable here, so ties are broken by a
// monotone sequence number: two events scheduled for the same instant
// dispatch in the order they were scheduled (FIFO), never in heap order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace synran {

/// Simulated time in abstract ticks. The engine never consults wall-clock
/// (lint-enforced); ticks only mean "this happens before that" plus the
/// delay models' arithmetic.
using SimTime = std::uint64_t;

/// Sentinel: "no deadline" / "never". Not a schedulable instant.
inline constexpr SimTime kNever = ~static_cast<SimTime>(0);

/// Something that reacts to scheduled events. One source may have any
/// number of events outstanding; `tag` disambiguates them (the scheduling
/// call passes it through verbatim).
class EventSource {
 public:
  virtual ~EventSource() = default;
  virtual void do_next_event(SimTime now, std::uint64_t tag) = 0;
};

/// The central time-ordered event queue: a binary heap of
/// (time, tiebreak-seq, source, tag). `run_next` pops the earliest entry,
/// advances the clock to its time, and dispatches it. Equal-time entries
/// dispatch in scheduling order — the seq is assigned monotonically at
/// schedule time — so a run's event order is a pure function of the calls
/// made against the list, independent of heap internals.
class EventList {
 public:
  SimTime now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Earliest scheduled instant. Requires a non-empty list.
  SimTime next_time() const;

  /// Schedules `source` at absolute time `at` (>= now, < kNever). The
  /// source is borrowed and must outlive the dispatch.
  void schedule_at(EventSource& source, SimTime at, std::uint64_t tag = 0);

  /// Schedules `source` at now + delay (saturating below kNever).
  void schedule_in(EventSource& source, SimTime delay, std::uint64_t tag = 0);

  /// Dispatches the earliest event, advancing the clock to its time first.
  /// Returns false (and leaves the clock alone) when the list is empty.
  bool run_next();

  /// Events dispatched so far.
  std::uint64_t dispatched() const { return dispatched_; }

 private:
  struct Entry {
    SimTime time = 0;
    std::uint64_t seq = 0;
    EventSource* source = nullptr;
    std::uint64_t tag = 0;
  };
  /// Max-heap comparator inverted into a min-heap on (time, seq).
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::vector<Entry> heap_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
};

/// A free-standing event source wrapping a callback: the composition
/// mechanism that lets fault injection and protocol timeouts ride the same
/// clock as the delay models instead of replacing them. The engine arms one
/// Trigger per injected fault; tests and future scenario families arm their
/// own.
class Trigger final : public EventSource {
 public:
  using Action = std::function<void(SimTime now, std::uint64_t tag)>;

  Trigger(EventList& list, Action action);

  void arm_at(SimTime at, std::uint64_t tag = 0);
  void arm_in(SimTime delay, std::uint64_t tag = 0);

  void do_next_event(SimTime now, std::uint64_t tag) override;

 private:
  EventList* list_;
  Action action_;
};

}  // namespace synran
