// Per-link delay models: the policy layer between "a process sent a
// message" and "the recipient's on_message fires".
//
// A model classifies each send into either a timed delivery (the fabric
// schedules it on the EventList) or an adversary-held message (parked in
// the scheduler-visible pool until the scheduler delivers it — the classic
// full-information asynchronous adversary). A held classification may carry
// a deadline, which is how partial synchrony enters: GstDelay clamps every
// delivery to max(send_time, GST) + bound, so the adversary keeps full
// scheduling freedom before the global stabilization time and only bounded
// freedom after it [DLS88-style]. Composition over replacement: the same
// scheduler, fault injections, and protocol timeouts run unchanged under
// any model.
#pragma once

#include <cstdint>
#include <memory>

#include "async/event.hpp"
#include "async/process.hpp"
#include "common/rng.hpp"

namespace synran {

/// One send's fate as decided by a delay model.
struct LinkDelay {
  /// Absolute delivery instant; meaningful when !held.
  SimTime deliver_at = 0;
  /// Parked for the adversarial scheduler instead of timed delivery.
  bool held = false;
  /// When held: latest instant the fabric force-delivers it (kNever =
  /// the scheduler alone decides — full asynchrony).
  SimTime deadline = kNever;
};

class DelayModel {
 public:
  virtual ~DelayModel() = default;
  /// Called once per run before any classify().
  virtual void begin(std::uint32_t /*n*/) {}
  /// Decides the fate of `msg` sent at `now`. Timed deliveries must not
  /// land in the past (deliver_at >= now); the engine enforces this.
  virtual LinkDelay classify(const AsyncMessage& msg, SimTime now) = 0;
  virtual const char* name() const = 0;
};

/// Every link takes exactly `latency` ticks: the lockstep-like baseline.
/// With the EventList's FIFO tiebreak this reproduces true send-order
/// delivery (unlike the step-scheduler's swap-remove "fifo").
class FixedDelay final : public DelayModel {
 public:
  explicit FixedDelay(SimTime latency) : latency_(latency) {}
  LinkDelay classify(const AsyncMessage& /*msg*/, SimTime now) override {
    return LinkDelay{now + latency_, false, kNever};
  }
  const char* name() const override { return "fixed"; }

 private:
  SimTime latency_;
};

/// Seeded random-bounded latency, i.i.d. uniform in [lo, hi] per message:
/// benign network jitter.
class UniformDelay final : public DelayModel {
 public:
  UniformDelay(SimTime lo, SimTime hi, std::uint64_t seed);
  LinkDelay classify(const AsyncMessage& msg, SimTime now) override;
  const char* name() const override { return "uniform"; }

 private:
  SimTime lo_;
  SimTime hi_;
  // Network-side randomness (it shapes the schedule, not the protocol's
  // coins), outside the CoinSource enumeration contract like schedulers.
  Xoshiro256 rng_;  // synran-lint: allow(coin-source)
};

/// Every message is held for the scheduler with no deadline: the strong
/// asynchronous adversary. This is the engine default and reproduces the
/// old step-scheduler semantics bit for bit.
class AdversaryDelay final : public DelayModel {
 public:
  LinkDelay classify(const AsyncMessage& /*msg*/, SimTime /*now*/) override {
    return LinkDelay{0, true, kNever};
  }
  const char* name() const override { return "adversary"; }
};

/// Partial synchrony: wraps an inner model and clamps every delivery —
/// timed or held — to max(send_time, gst) + bound. Before GST the inner
/// model (typically AdversaryDelay) rules; after GST every message is
/// delivered within `bound` ticks, which is what makes timeout-based
/// protocol logic sound.
class GstDelay final : public DelayModel {
 public:
  /// Borrowing form: `inner` must outlive the model.
  GstDelay(DelayModel& inner, SimTime gst, SimTime bound);
  /// Owning convenience: adversarial before GST, `bound`-synchronous after.
  GstDelay(SimTime gst, SimTime bound);

  void begin(std::uint32_t n) override { inner_->begin(n); }
  LinkDelay classify(const AsyncMessage& msg, SimTime now) override;
  const char* name() const override { return "gst"; }

  SimTime gst() const { return gst_; }
  SimTime bound() const { return bound_; }

 private:
  std::unique_ptr<DelayModel> owned_;
  DelayModel* inner_;
  SimTime gst_;
  SimTime bound_;
};

}  // namespace synran
