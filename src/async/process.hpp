// The asynchronous message-passing substrate.
//
// The paper's §1.2 positions its synchronous bound against the asynchronous
// world: [FLP85] forbids deterministic solutions outright, Ben-Or's
// protocol [BO83] solves it in O(1) expected rounds for t = O(√n), and
// Aspnes [Asp97] lower-bounds the coin flips. This substrate lets the
// experiment suite reproduce that context: processes react to single
// message deliveries, and the adversary is the scheduler — it sees
// everything and picks which in-transit message arrives next, and which
// processes crash (dropping any subset of their in-transit messages).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "net/types.hpp"

namespace synran {

/// A message in transit.
struct AsyncMessage {
  ProcessId from = 0;
  ProcessId to = 0;
  Payload payload = 0;
};

/// A request to be woken `delay` ticks of simulated time from now; `id` is
/// echoed back through on_timer so one process can keep several timers
/// apart. Timer support is what partial synchrony buys the protocol layer:
/// after GST a bounded delivery delay makes timeouts meaningful.
struct AsyncTimerRequest {
  std::uint64_t delay = 0;
  std::uint64_t id = 0;
};

/// Collects a process's sends (and timer requests) during one activation.
class AsyncOutbox {
 public:
  explicit AsyncOutbox(ProcessId self, std::uint32_t n)
      : self_(self), n_(n) {}

  void send(ProcessId to, Payload p) { out_.push_back({self_, to, p}); }
  void broadcast(Payload p) {
    for (ProcessId i = 0; i < n_; ++i) send(i, p);
  }

  /// Asks the engine to call on_timer(id) after `delay` ticks. Under the
  /// pure adversary-held model simulated time never advances, so timers
  /// set there simply never fire — protocols must not rely on them for
  /// safety, only liveness.
  void set_timer(std::uint64_t delay, std::uint64_t id = 0) {
    timers_.push_back({delay, id});
  }

  std::vector<AsyncMessage> take() { return std::move(out_); }
  std::vector<AsyncTimerRequest> take_timers() { return std::move(timers_); }

 private:
  ProcessId self_;
  std::uint32_t n_;
  std::vector<AsyncMessage> out_;
  std::vector<AsyncTimerRequest> timers_;
};

/// Scheduler-visible snapshot of a process (full information).
struct AsyncProcessView {
  Bit estimate = Bit::Zero;
  bool decided = false;
  std::uint32_t round = 0;  ///< the protocol's internal round counter
};

/// An asynchronous protocol participant. All randomness flows through the
/// CoinSource handed to each activation, as in the synchronous substrate.
class AsyncProcess {
 public:
  virtual ~AsyncProcess() = default;

  /// Called once before any delivery; emit the initial messages.
  virtual void start(AsyncOutbox& out, CoinSource& coins) = 0;

  /// Called per delivered message.
  virtual void on_message(const AsyncMessage& msg, AsyncOutbox& out,
                          CoinSource& coins) = 0;

  /// Called when a timer set via AsyncOutbox::set_timer expires. Default:
  /// ignore (message-driven protocols need no clock).
  virtual void on_timer(std::uint64_t /*id*/, AsyncOutbox& /*out*/,
                        CoinSource& /*coins*/) {}

  virtual bool decided() const = 0;
  virtual Bit decision() const = 0;
  virtual AsyncProcessView view() const = 0;
};

class AsyncProcessFactory {
 public:
  virtual ~AsyncProcessFactory() = default;
  virtual std::unique_ptr<AsyncProcess> make(ProcessId id, std::uint32_t n,
                                             std::uint32_t t,
                                             Bit input) const = 0;
  virtual const char* name() const = 0;
};

}  // namespace synran
