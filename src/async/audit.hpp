// Runtime invariant auditing for the asynchronous engine — the async
// sibling of sim/audit.hpp's RunAuditor. The engine drives it always-on;
// every violation throws InvariantError with a narrative naming the instant
// and the actor, because a silent model violation would quietly invalidate
// whatever experiment was running.
//
// Guards:
//   * event-time monotonicity — observable instants never decrease;
//   * crash accounting — budget respected, victims valid and crashed once;
//   * omission accounting — injection budget respected, dead senders can't
//     be "omitted";
//   * silence of the dead — no delivery to, or activation of, a crashed
//     process, and no sends attributed to one after its crash.
#pragma once

#include <cstdint>
#include <vector>

#include "async/event.hpp"
#include "async/process.hpp"

namespace synran {

class AsyncRunAuditor {
 public:
  void begin(std::uint32_t n, std::uint32_t t_budget,
             std::uint32_t omission_budget);

  /// Every observable instant flows through here first.
  void note_time(SimTime now);

  /// A crash is about to be committed at `now`.
  void on_crash(SimTime now, ProcessId victim);

  /// `msg` is about to be handed to its recipient's on_message at `now`.
  void on_deliver(SimTime now, const AsyncMessage& msg);

  /// `msg` was just emitted by an activation of msg.from at `now`.
  void on_send(SimTime now, const AsyncMessage& msg);

  /// An omission injection against `sender` fired at `now`, suppressing
  /// `dropped` in-flight messages.
  void on_omission(SimTime now, ProcessId sender, std::uint64_t dropped);

  /// End-of-run cross-check against the engine's own accounting.
  void on_end(std::uint32_t crashes_reported,
              std::uint32_t omissions_reported) const;

  std::uint32_t crashes() const { return crashes_; }
  std::uint32_t omissions() const { return omissions_; }

 private:
  std::uint32_t n_ = 0;
  std::uint32_t t_budget_ = 0;
  std::uint32_t omission_budget_ = 0;
  std::uint32_t crashes_ = 0;
  std::uint32_t omissions_ = 0;
  SimTime last_time_ = 0;
  std::vector<bool> crashed_;
};

}  // namespace synran
