// Ben-Or's randomized asynchronous consensus [BO83], crash-fault version
// (t < n/2) — the protocol whose O(1)-for-t=O(√n) behaviour motivates the
// paper's question, and whose synchronous one-side-bias descendant is
// SynRan itself.
//
// Per round r:
//   report phase:  broadcast (R, r, b); await n−t reports; if some value
//                  holds a strict majority of n, propose it, else propose ⊥.
//   proposal phase: broadcast (P, r, prop); await n−t proposals; decide v on
//                  ≥ t+1 proposals for v, adopt v on ≥ 1, coin-flip
//                  otherwise. Decided processes keep participating with b
//                  pinned so laggards can finish.
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "async/process.hpp"

namespace synran {

class BenOrAsyncProcess final : public AsyncProcess {
 public:
  BenOrAsyncProcess(ProcessId id, std::uint32_t n, std::uint32_t t,
                    Bit input);

  void start(AsyncOutbox& out, CoinSource& coins) override;
  void on_message(const AsyncMessage& msg, AsyncOutbox& out,
                  CoinSource& coins) override;
  bool decided() const override { return decided_; }
  Bit decision() const override { return b_; }
  AsyncProcessView view() const override { return {b_, decided_, round_}; }

  /// Message payload codec (exposed for tests).
  struct Wire {
    bool proposal = false;  ///< false = report (R), true = proposal (P)
    std::uint32_t round = 0;
    int value = -1;  ///< 0, 1, or -1 for ⊥ (proposals only)
  };
  static Payload encode(const Wire& w);
  static Wire decode(Payload p);

 private:
  struct Tally {
    std::uint32_t zeros = 0;
    std::uint32_t ones = 0;
    std::uint32_t bots = 0;
    std::uint32_t total() const { return zeros + ones + bots; }
  };

  void try_advance(AsyncOutbox& out, CoinSource& coins);

  ProcessId id_;
  std::uint32_t n_;
  std::uint32_t t_;
  Bit b_;
  bool decided_ = false;
  std::uint32_t round_ = 1;
  bool in_proposal_phase_ = false;
  /// After deciding, keep echoing for two more rounds (enough for every
  /// laggard to reach its own decision — it is at most one round behind),
  /// then go silent so the run can drain.
  std::uint32_t help_rounds_left_ = 2;
  bool silent_ = false;
  std::map<std::pair<std::uint32_t, bool>, Tally> tallies_;
};

class BenOrAsyncFactory final : public AsyncProcessFactory {
 public:
  std::unique_ptr<AsyncProcess> make(ProcessId id, std::uint32_t n,
                                     std::uint32_t t,
                                     Bit input) const override {
    return std::make_unique<BenOrAsyncProcess>(id, n, t, input);
  }
  const char* name() const override { return "benor-async"; }
};

}  // namespace synran
