// Ben-Or's randomized asynchronous consensus [BO83], crash-fault version
// (t < n/2) — the protocol whose O(1)-for-t=O(√n) behaviour motivates the
// paper's question, and whose synchronous one-side-bias descendant is
// SynRan itself.
//
// Per round r:
//   report phase:  broadcast (R, r, b); await n−t reports; if some value
//                  holds a strict majority of n, propose it, else propose ⊥.
//   proposal phase: broadcast (P, r, prop); await n−t proposals; decide v on
//                  ≥ t+1 proposals for v, adopt v on ≥ 1, coin-flip
//                  otherwise. Decided processes keep participating with b
//                  pinned so laggards can finish.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "async/process.hpp"

namespace synran {

/// Protocol knobs beyond (n, t, input).
struct BenOrOptions {
  /// 0 = pure message-driven (the classic protocol). Nonzero arms a
  /// retransmission timer: every `retransmit_every` ticks an undecided (or
  /// still-helping) process rebroadcasts its latest phase message. Only
  /// meaningful under a delay model where simulated time advances — it is
  /// what makes the protocol live against omission bursts and lets
  /// partial-synchrony runs recover dropped quorums. Tallies deduplicate
  /// by sender, so retransmissions never double-count.
  std::uint64_t retransmit_every = 0;
};

class BenOrAsyncProcess final : public AsyncProcess {
 public:
  BenOrAsyncProcess(ProcessId id, std::uint32_t n, std::uint32_t t, Bit input,
                    const BenOrOptions& options = {});

  void start(AsyncOutbox& out, CoinSource& coins) override;
  void on_message(const AsyncMessage& msg, AsyncOutbox& out,
                  CoinSource& coins) override;
  void on_timer(std::uint64_t id, AsyncOutbox& out,
                CoinSource& coins) override;
  bool decided() const override { return decided_; }
  Bit decision() const override { return b_; }
  AsyncProcessView view() const override { return {b_, decided_, round_}; }

  /// Message payload codec (exposed for tests).
  struct Wire {
    bool proposal = false;  ///< false = report (R), true = proposal (P)
    std::uint32_t round = 0;
    int value = -1;  ///< 0, 1, or -1 for ⊥ (proposals only)
  };
  static Payload encode(const Wire& w);
  static Wire decode(Payload p);

 private:
  struct Tally {
    std::uint32_t zeros = 0;
    std::uint32_t ones = 0;
    std::uint32_t bots = 0;
    /// Which senders already counted toward this (round, phase): a
    /// retransmitted broadcast must not inflate the quorum.
    std::vector<bool> seen;
    std::uint32_t total() const { return zeros + ones + bots; }
  };

  void try_advance(AsyncOutbox& out, CoinSource& coins);
  void broadcast_phase(AsyncOutbox& out, Payload p);

  ProcessId id_;
  std::uint32_t n_;
  std::uint32_t t_;
  BenOrOptions opt_;
  Bit b_;
  bool decided_ = false;
  std::uint32_t round_ = 1;
  bool in_proposal_phase_ = false;
  /// After deciding, keep echoing for two more rounds (enough for every
  /// laggard to reach its own decision — it is at most one round behind),
  /// then go silent so the run can drain.
  std::uint32_t help_rounds_left_ = 2;
  bool silent_ = false;
  Payload last_broadcast_ = 0;
  std::map<std::pair<std::uint32_t, bool>, Tally> tallies_;
};

class BenOrAsyncFactory final : public AsyncProcessFactory {
 public:
  BenOrAsyncFactory() = default;
  explicit BenOrAsyncFactory(const BenOrOptions& options)
      : options_(options) {}

  std::unique_ptr<AsyncProcess> make(ProcessId id, std::uint32_t n,
                                     std::uint32_t t,
                                     Bit input) const override {
    return std::make_unique<BenOrAsyncProcess>(id, n, t, input, options_);
  }
  const char* name() const override { return "benor-async"; }

 private:
  BenOrOptions options_;
};

}  // namespace synran
