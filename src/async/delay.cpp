#include "async/delay.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace synran {

UniformDelay::UniformDelay(SimTime lo, SimTime hi, std::uint64_t seed)
    : lo_(lo), hi_(hi), rng_(seed) {
  SYNRAN_REQUIRE(lo <= hi, "uniform delay needs lo <= hi");
  SYNRAN_REQUIRE(hi < kNever, "uniform delay bound must be finite");
}

LinkDelay UniformDelay::classify(const AsyncMessage& /*msg*/, SimTime now) {
  const SimTime jitter = lo_ + rng_.below(hi_ - lo_ + 1);
  return LinkDelay{now + jitter, false, kNever};
}

GstDelay::GstDelay(DelayModel& inner, SimTime gst, SimTime bound)
    : inner_(&inner), gst_(gst), bound_(bound) {
  SYNRAN_REQUIRE(bound >= 1, "post-GST delivery bound must be >= 1");
  SYNRAN_REQUIRE(gst < kNever && bound < kNever, "GST parameters are finite");
}

GstDelay::GstDelay(SimTime gst, SimTime bound)
    : owned_(std::make_unique<AdversaryDelay>()),
      inner_(owned_.get()),
      gst_(gst),
      bound_(bound) {
  SYNRAN_REQUIRE(bound >= 1, "post-GST delivery bound must be >= 1");
  SYNRAN_REQUIRE(gst < kNever && bound < kNever, "GST parameters are finite");
}

LinkDelay GstDelay::classify(const AsyncMessage& msg, SimTime now) {
  LinkDelay d = inner_->classify(msg, now);
  const SimTime clamp = std::max(now, gst_) + bound_;
  if (d.held) {
    d.deadline = std::min(d.deadline, clamp);
  } else {
    d.deliver_at = std::min(d.deliver_at, clamp);
  }
  return d;
}

}  // namespace synran
