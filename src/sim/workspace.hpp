// Reusable per-worker execution state for the synchronous engine.
//
// Every repeated-run experiment used to pay one full set of heap
// allocations per repetition: payload/receipt/status vectors inside
// Engine::run plus the per-process coin sources. An EngineWorkspace owns all
// of those buffers once; the engine resets them in place at the start of
// each run, so a worker executing thousands of repetitions allocates only
// what the protocol processes themselves need. One workspace serves one
// thread — workspaces are never shared concurrently.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/dynbitset.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "net/types.hpp"
#include "sim/process.hpp"

namespace synran {

/// The aggregate-facing outcome of one execution: every scalar the repeated
/// harness folds into its statistics, and nothing per-process. The full
/// RunResult (per-process status vectors, per-round crash counts) is
/// materialized only on request — narration and tests want it, the
/// hot aggregate path does not.
struct RunSummary {
  /// First round by whose end every non-crashed process had decided;
  /// 0 if that never happened (see `terminated`).
  std::uint32_t rounds_to_decision = 0;
  /// Round by whose end every non-crashed process had halted.
  std::uint32_t rounds_to_halt = 0;
  bool terminated = false;  ///< all survivors decided within max_rounds

  bool agreement = false;     ///< all survivor decisions equal
  bool has_decision = false;  ///< at least one survivor decided
  Bit decision = Bit::Zero;   ///< the common value when agreement holds
  /// Validity verdict against this run's inputs (computed while the engine
  /// still holds the inputs, so summary-only callers never need them back).
  bool validity = true;

  std::uint32_t crashes_total = 0;
  /// Total point-to-point deliveries (communication complexity; a broadcast
  /// to k receivers counts k).
  std::uint64_t messages_delivered = 0;

  /// Omission directives the adversary spent (0 under the fail-stop default).
  std::uint32_t omissions_total = 0;
  /// Point-to-point messages actually suppressed by omissions (each directive
  /// contributes |drop_for ∩ active receivers|).
  std::uint64_t messages_omitted = 0;

  /// Corruption directives the adversary spent (0 under the fail-stop
  /// default).
  std::uint32_t corruptions_total = 0;
  /// Point-to-point messages actually forged (each directive contributes its
  /// number of forgeries whose target is an active receiver).
  std::uint64_t messages_corrupted = 0;
};

/// Pre-sized buffers for Engine runs, reused across repetitions. The input
/// buffer is writable by callers (make_inputs fills it in place); everything
/// else belongs to the engine.
class EngineWorkspace {
 public:
  EngineWorkspace() = default;
  EngineWorkspace(const EngineWorkspace&) = delete;
  EngineWorkspace& operator=(const EngineWorkspace&) = delete;

  /// Scratch input vector for the next run; callers may fill and pass it to
  /// Engine::run (the engine reads inputs through a span, so any vector
  /// works — this one just recycles its allocation).
  std::vector<Bit>& inputs() { return inputs_; }
  const std::vector<Bit>& inputs() const { return inputs_; }

 private:
  friend class Engine;

  /// Sizes every buffer for system size `n` (first use or n change) or
  /// clears them in place (steady state; no allocation).
  void prepare(std::uint32_t n) {
    if (alive_.size() != n) {
      alive_ = DynBitset(n, true);
      halted_ = DynBitset(n, false);
      payloads_.assign(n, std::nullopt);
      receipts_.assign(n, Receipt{});
      have_receipt_.assign(n, 0);
      procs_.resize(n);
      coins_.assign(n, RandomCoinSource(0));
    } else {
      alive_.set_all();
      halted_.clear_all();
      for (auto& p : payloads_) p.reset();
      for (auto& h : have_receipt_) h = 0;
    }
    crashes_per_round_.clear();
  }

  std::vector<Bit> inputs_;
  std::vector<std::unique_ptr<Process>> procs_;
  std::vector<RandomCoinSource> coins_;
  DynBitset alive_;
  DynBitset halted_;
  std::vector<std::optional<Payload>> payloads_;
  std::vector<Receipt> receipts_;
  std::vector<std::uint8_t> have_receipt_;
  std::vector<std::uint32_t> crashes_per_round_;  ///< full-result runs only
};

}  // namespace synran
