// The adversary-side interface of the synchronous engine.
//
// This is the fail-stop, adaptive, strongly-dynamic, computationally
// unbounded, full-information adversary of §3.1: each round it observes every
// process's local state (including fresh coin flips) and every pending
// message, then picks which processes to crash during the exchange and which
// subset of each victim's messages still goes out. When the engine grants an
// omission budget (EngineOptions::omission_budget — a deliberate extension
// beyond the paper's model), the plan may additionally suppress live senders'
// messages for chosen receiver subsets without killing anyone; a byzantine
// budget (EngineOptions::byzantine_budget) likewise lets it replace live
// senders' messages with per-receiver forged values.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "common/dynbitset.hpp"
#include "net/types.hpp"
#include "sim/process.hpp"

namespace synran {

/// Everything the adversary can see when planning a round. Views borrow from
/// the engine; they are valid only during the plan_round call.
class WorldView {
 public:
  WorldView(Round round, std::uint32_t n, const DynBitset& alive,
            const DynBitset& halted,
            std::span<const std::optional<Payload>> payloads,
            std::span<const std::unique_ptr<Process>> processes,
            std::uint32_t budget_left, std::uint32_t round_cap,
            std::uint32_t omission_budget_left = 0,
            std::uint32_t omission_round_cap = 0,
            std::uint32_t corruption_budget_left = 0,
            std::uint32_t corruption_round_cap = 0)
      : round_(round),
        n_(n),
        alive_(alive),
        halted_(halted),
        payloads_(payloads),
        processes_(processes),
        budget_left_(budget_left),
        round_cap_(round_cap),
        omission_budget_left_(omission_budget_left),
        omission_round_cap_(omission_round_cap),
        corruption_budget_left_(corruption_budget_left),
        corruption_round_cap_(corruption_round_cap) {}

  Round round() const { return round_; }
  std::uint32_t n() const { return n_; }

  /// Processes not yet crashed by the adversary (halted ones included).
  const DynBitset& alive() const { return alive_; }
  /// Processes that voluntarily stopped (decided and exited the loop).
  const DynBitset& halted() const { return halted_; }

  /// True iff `p` broadcasts this round (alive and not halted).
  bool sending(ProcessId p) const {
    return p < n_ && payloads_[p].has_value();
  }
  /// The payload `p` wants to broadcast; nullopt if not sending.
  std::optional<Payload> payload(ProcessId p) const { return payloads_[p]; }
  std::span<const std::optional<Payload>> payloads() const {
    return payloads_;
  }

  /// Full-information introspection of a process's local state.
  const Process& process(ProcessId p) const { return *processes_[p]; }
  std::span<const std::unique_ptr<Process>> processes() const {
    return processes_;
  }

  /// Crashes the adversary may still perform over the whole execution.
  std::uint32_t budget_left() const { return budget_left_; }
  /// Max crashes allowed this round (0 = unlimited beyond the global budget).
  std::uint32_t round_cap() const { return round_cap_; }

  /// Effective number of crashes available this round.
  std::uint32_t round_budget() const {
    if (round_cap_ == 0) return budget_left_;
    return round_cap_ < budget_left_ ? round_cap_ : budget_left_;
  }

  /// Omission directives the adversary may still spend over the whole
  /// execution (0 = omissions forbidden, the fail-stop default).
  std::uint32_t omission_budget_left() const { return omission_budget_left_; }
  /// Max omission directives allowed this round (0 = no per-round cap).
  std::uint32_t omission_round_cap() const { return omission_round_cap_; }

  /// Effective number of omission directives available this round.
  std::uint32_t omission_round_budget() const {
    if (omission_round_cap_ == 0) return omission_budget_left_;
    return omission_round_cap_ < omission_budget_left_
               ? omission_round_cap_
               : omission_budget_left_;
  }

  /// Corruption directives the adversary may still spend over the whole
  /// execution (0 = corrupted values forbidden, the fail-stop default).
  std::uint32_t corruption_budget_left() const {
    return corruption_budget_left_;
  }
  /// Max corruption directives allowed this round (0 = no per-round cap).
  std::uint32_t corruption_round_cap() const { return corruption_round_cap_; }

  /// Effective number of corruption directives available this round.
  std::uint32_t corruption_round_budget() const {
    if (corruption_round_cap_ == 0) return corruption_budget_left_;
    return corruption_round_cap_ < corruption_budget_left_
               ? corruption_round_cap_
               : corruption_budget_left_;
  }

 private:
  Round round_;
  std::uint32_t n_;
  const DynBitset& alive_;
  const DynBitset& halted_;
  std::span<const std::optional<Payload>> payloads_;
  std::span<const std::unique_ptr<Process>> processes_;
  std::uint32_t budget_left_;
  std::uint32_t round_cap_;
  std::uint32_t omission_budget_left_;
  std::uint32_t omission_round_cap_;
  std::uint32_t corruption_budget_left_;
  std::uint32_t corruption_round_cap_;
};

/// Strategy interface. Implementations must respect the budget exposed by the
/// view; the engine validates and throws on violations (a buggy adversary is
/// a library bug, not a tolerated input).
class Adversary {
 public:
  virtual ~Adversary() = default;

  /// Called once before round 1 of each execution.
  virtual void begin(std::uint32_t /*n*/, std::uint32_t /*t_budget*/) {}

  /// Chooses this round's crashes and partial deliveries.
  virtual FaultPlan plan_round(const WorldView& world) = 0;

  virtual const char* name() const = 0;
};

/// The trivial adversary: never interferes. Baseline for every experiment.
class NoAdversary final : public Adversary {
 public:
  FaultPlan plan_round(const WorldView&) override { return {}; }
  const char* name() const override { return "none"; }
};

}  // namespace synran
