// Runtime invariant auditor for the §3.1 adversary model.
//
// The engine's correctness story has two layers: TracingAdversary +
// check_model_invariants re-verify a *finished* execution from its recorded
// trace, while this auditor validates every round *as it happens*, with
// enough context to name the offender. It enforces, per round:
//
//   * cumulative crashes never exceed the global budget t;
//   * per-round crashes respect the per-round cap (class-B adversaries);
//   * omission directives target live senders only, never duplicate or
//     overlap a crash victim, and respect their own global budget and
//     per-round cap (0 budget = omissions forbidden, the fail-stop default);
//   * corruption directives likewise target live senders only, never
//     duplicate or overlap a crash/omission directive, never forge the same
//     receiver twice, and respect the byzantine budget and per-round cap
//     (0 budget = corrupted values forbidden, the fail-stop default);
//   * a crashed process never acts again (no payloads, no halting, no
//     re-crash) — "silence of the dead";
//   * a decided process never flips its decision, and decided() never
//     reverts (the paper's "cannot change its decision");
//   * messages_delivered is exactly the surviving-sender broadcast count:
//     full broadcasts reach every active receiver, a crashed sender reaches
//     exactly deliver_to ∩ active, and each omission subtracts exactly
//     drop_for ∩ active.
//
// Violations throw InvariantError with a round-stamped narrative naming the
// process and the budget arithmetic involved. The predicates are cheap
// (bitset ops, O(n) per round) so the engine keeps them always on;
// AuditedAdversary additionally lets tests and fuzzers wrap any third-party
// Adversary and validate it in isolation.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/dynbitset.hpp"
#include "common/ids.hpp"
#include "net/types.hpp"
#include "sim/adversary.hpp"

namespace synran {

/// Stateful round-by-round validator. Drive it in engine order:
/// begin → (on_phase_a → on_plan → on_deliveries)* per round.
class RunAuditor {
 public:
  /// Resets all state for a fresh execution. Omissions and corruptions
  /// default to forbidden (budget 0), matching the paper's fail-stop model.
  void begin(std::uint32_t n, std::uint32_t t_budget,
             std::uint32_t per_round_cap, std::uint32_t omission_budget = 0,
             std::uint32_t omission_round_cap = 0,
             std::uint32_t byzantine_budget = 0,
             std::uint32_t byzantine_round_cap = 0);

  /// After phase A: `payloads[i]` is what process i wants to broadcast
  /// (nullopt = halted or silent), `decided/decisions` its current verdict
  /// state, `halted` the voluntary-stop set. Checks silence of the dead and
  /// decision latching.
  void on_phase_a(Round round,
                  std::span<const std::optional<Payload>> payloads,
                  const DynBitset& halted,
                  std::span<const std::unique_ptr<Process>> processes);

  /// Validates a fault plan against the §3.1 budget rules and records its
  /// crashes. Call before applying the plan.
  void on_plan(Round round, const FaultPlan& plan,
               std::span<const std::optional<Payload>> payloads);

  /// Cross-checks one round's delivery count against the surviving-sender
  /// broadcast count implied by (payloads, plan, active receivers).
  /// `delivered` is the point-to-point total the engine accumulated for
  /// this round.
  void on_deliveries(Round round, const FaultPlan& plan,
                     std::span<const std::optional<Payload>> payloads,
                     const DynBitset& active_receivers,
                     std::uint64_t delivered);

  /// Strict mode additionally requires decisions to latch: decided() never
  /// reverts and the decision bit never changes. Off by default because the
  /// paper's SynRan rescinds decisions until STOP (only halting freezes the
  /// verdict); latching protocols (FloodMin, k-FloodMin) can opt in.
  void set_strict_decisions(bool strict) { strict_decisions_ = strict; }
  /// The cap is fixed per execution in the engine but only visible to a
  /// wrapper through WorldView, hence a setter rather than a begin() arg.
  void set_per_round_cap(std::uint32_t cap) { per_round_cap_ = cap; }
  /// Same late-binding story for the omission limits (AuditedAdversary syncs
  /// them from the WorldView; the engine passes them to begin() directly).
  void set_omission_budget(std::uint32_t budget) { omission_budget_ = budget; }
  void set_omission_round_cap(std::uint32_t cap) {
    omission_round_cap_ = cap;
  }
  void set_byzantine_budget(std::uint32_t budget) {
    byzantine_budget_ = budget;
  }
  void set_byzantine_round_cap(std::uint32_t cap) {
    byzantine_round_cap_ = cap;
  }

  std::uint32_t crashes_so_far() const { return cum_crashes_; }
  std::uint32_t budget_left() const { return t_budget_ - cum_crashes_; }
  std::uint32_t omissions_so_far() const { return cum_omissions_; }
  std::uint32_t omission_budget_left() const {
    return omission_budget_ - cum_omissions_;
  }
  std::uint32_t corruptions_so_far() const { return cum_corruptions_; }
  std::uint32_t corruption_budget_left() const {
    return byzantine_budget_ - cum_corruptions_;
  }
  const DynBitset& crashed() const { return crashed_; }

 private:
  [[noreturn]] void fail(Round round, const std::string& what) const;

  std::uint32_t n_ = 0;
  std::uint32_t t_budget_ = 0;
  std::uint32_t per_round_cap_ = 0;
  std::uint32_t cum_crashes_ = 0;
  std::uint32_t omission_budget_ = 0;
  std::uint32_t omission_round_cap_ = 0;
  std::uint32_t cum_omissions_ = 0;
  std::uint32_t byzantine_budget_ = 0;
  std::uint32_t byzantine_round_cap_ = 0;
  std::uint32_t cum_corruptions_ = 0;
  bool strict_decisions_ = false;
  DynBitset crashed_;
  std::vector<Round> crash_round_;
  std::vector<bool> was_decided_;
  std::vector<Bit> decision_was_;
  std::vector<bool> was_halted_;
};

/// Wraps any Adversary and audits each plan it emits before handing it to
/// the engine. The engine runs its own auditor regardless; this wrapper
/// exists so tests and fuzz drivers can pinpoint *which* adversary
/// misbehaved, and so adversaries can be validated against hand-built
/// WorldViews without an engine at all.
class AuditedAdversary final : public Adversary {
 public:
  explicit AuditedAdversary(Adversary& inner) : inner_(&inner) {}

  void begin(std::uint32_t n, std::uint32_t t_budget) override;
  FaultPlan plan_round(const WorldView& world) override;
  const char* name() const override { return "audited"; }

  const RunAuditor& auditor() const { return auditor_; }
  Adversary& inner() { return *inner_; }

 private:
  Adversary* inner_;
  RunAuditor auditor_;
  bool begun_ = false;
  /// The omission and byzantine budgets are invisible to Adversary::begin,
  /// so they are adopted from the first WorldView (nothing can have been
  /// spent before round 1) and cross-checked against the engine's
  /// arithmetic afterwards.
  bool omission_budget_synced_ = false;
};

}  // namespace synran
