// Forking a live execution.
//
// The full-information adversary of the paper evaluates "what would happen if
// I crashed these processes" — formally, the probabilities Pr[v | α_k, b] that
// define valency (§3.2). Computing them exactly is exponential; the
// simulation-scale substitute (documented in DESIGN.md) estimates them by
// Monte-Carlo: deep-copy the execution state visible in a WorldView, apply a
// candidate fault plan to the pending round, and run the copy to completion
// under a continuation strategy with fresh randomness.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/dynbitset.hpp"
#include "common/rng.hpp"
#include "sim/adversary.hpp"
#include "sim/process.hpp"

namespace synran {

/// A self-contained, copyable snapshot of an execution at the adversary
/// decision point of a round (after phase A, before delivery).
class ForkState {
 public:
  /// Deep-copies the execution visible in `world`.
  static ForkState from_world(const WorldView& world);

  ForkState(const ForkState& other);
  ForkState& operator=(const ForkState&) = delete;
  ForkState(ForkState&&) = default;

  std::uint32_t n() const { return n_; }
  Round round() const { return round_; }
  const DynBitset& alive() const { return alive_; }
  const DynBitset& halted() const { return halted_; }
  const std::optional<Payload>& payload(ProcessId p) const {
    return payloads_[p];
  }
  const Process& process(ProcessId p) const { return *procs_[p]; }
  std::uint32_t budget_left() const { return budget_left_; }
  std::uint32_t round_cap() const { return round_cap_; }

  /// Applies `plan` to the pending round: commits the crashes, delivers, and
  /// stores receipts for the survivors. Must be followed by advance().
  void deliver_with(const FaultPlan& plan);

  /// Runs phase A of the next round; processes draw coins from `coins`
  /// (indexed by process id). Returns false when every alive process has
  /// halted (execution over).
  bool advance(const std::vector<std::unique_ptr<CoinSource>>& coins);

  /// Convenience: true iff all alive processes decided.
  bool all_alive_decided() const;
  /// The common decision if agreement holds among decided survivors.
  std::optional<Bit> unanimous_decision() const;

  /// Builds a WorldView over this state (valid while the state lives and
  /// until the next mutation).
  WorldView world_view() const;

 private:
  ForkState() = default;

  std::uint32_t n_ = 0;
  Round round_ = 1;  ///< the round whose delivery is pending
  DynBitset alive_;
  DynBitset halted_;
  std::vector<std::unique_ptr<Process>> procs_;
  std::vector<std::optional<Payload>> payloads_;
  std::vector<Receipt> receipts_;
  std::vector<bool> have_receipt_;
  std::uint32_t budget_left_ = 0;
  std::uint32_t round_cap_ = 0;
};

/// Outcome of one rollout.
struct RolloutOutcome {
  bool terminated = false;     ///< all survivors halted within the cap
  bool decided_one = false;    ///< unanimous survivors' decision was 1
  bool agreement = true;       ///< survivors agreed (false = protocol bug)
  std::uint32_t extra_rounds = 0;  ///< rounds played beyond the fork point
};

/// Plays the execution in `world` forward to completion: `first_plan` is
/// applied to the pending round; `continuation` chooses every later plan
/// (receiving proper WorldViews with the decremented budget). Randomness for
/// process coins derives from `seed`.
RolloutOutcome rollout(const WorldView& world, const FaultPlan& first_plan,
                       Adversary& continuation, std::uint64_t seed,
                       std::uint32_t max_extra_rounds = 100000);

}  // namespace synran
