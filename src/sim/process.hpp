// The protocol-side interface of the synchronous engine.
//
// One Process object is one participant. The engine drives it in the round
// structure of §3.1: phase A (coins + local computation + message
// preparation), adversary intervention, phase B (delivery). A Process sees
// phase B's result at the *start* of its next phase A, which is equivalent to
// the paper's ordering and keeps the interface to a single call per round.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "net/types.hpp"

namespace synran {

/// Snapshot of a process's externally meaningful state, exposed to the
/// full-information adversary (§3.1: the adversary "can examine their local
/// coins and variables, and the messages they wish to send").
struct ProcessView {
  Bit estimate = Bit::Zero;   ///< current choice b_i
  bool decided = false;       ///< has irrevocably decided
  bool halted = false;        ///< voluntarily stopped participating
  bool flipped_coin = false;  ///< drew a coin in the latest phase A
  bool deterministic = false; ///< in SynRan's deterministic stage
};

/// A consensus protocol participant.
///
/// Contract:
///  * `on_round` is called once per round while the process is alive and not
///    halted. `prev` is the receipt of the previous round's exchange
///    (nullptr in round 1). The process updates its state — drawing any
///    randomness only from `coins` — and returns the payload to broadcast
///    this round, or nullopt to halt voluntarily.
///  * Once decided() turns true it must stay true and decision() must never
///    change (the paper's "cannot change its decision").
///  * A process may halt only after deciding.
///  * `clone` must produce an independent deep copy (used by the valency
///    engine to branch executions).
class Process {
 public:
  virtual ~Process() = default;

  virtual std::optional<Payload> on_round(const Receipt* prev,
                                          CoinSource& coins) = 0;

  virtual bool decided() const = 0;
  virtual Bit decision() const = 0;
  virtual bool halted() const = 0;

  virtual ProcessView view() const = 0;

  /// Mixes the full internal state into 64 bits; equal states must produce
  /// equal digests (used for memoization in the valency engine).
  virtual std::uint64_t state_digest() const = 0;

  virtual std::unique_ptr<Process> clone() const = 0;
};

/// Creates the n participants of one execution.
class ProcessFactory {
 public:
  virtual ~ProcessFactory() = default;
  /// `input` is x_i. `n` is the system size.
  virtual std::unique_ptr<Process> make(ProcessId id, std::uint32_t n,
                                        Bit input) const = 0;
  /// Human-readable protocol name for reports.
  virtual const char* name() const = 0;
};

}  // namespace synran
