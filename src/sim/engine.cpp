#include "sim/engine.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "net/fabric.hpp"
#include "obs/observer.hpp"
#include "sim/audit.hpp"

namespace synran {

namespace {

/// Snapshot of the engine state right after phase A, in observer vocabulary.
obs::RoundObservation observe_round(
    Round round, std::uint32_t n, const DynBitset& alive,
    const DynBitset& halted,
    const std::vector<std::optional<Payload>>& payloads,
    const std::vector<std::unique_ptr<Process>>& procs,
    std::uint32_t budget_left) {
  obs::RoundObservation ro;
  ro.round = round;
  ro.alive = static_cast<std::uint32_t>(alive.count());
  ro.halted = static_cast<std::uint32_t>(halted.count());
  ro.budget_left = budget_left;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (alive.test(i) && procs[i]->decided()) ++ro.decided;
    const auto& p = payloads[i];
    if (!p.has_value()) continue;
    ++ro.senders;
    if (payload::supports(*p, Bit::One)) ++ro.ones;
    if (payload::supports(*p, Bit::Zero)) ++ro.zeros;
    if (*p & payload::kDeterministicFlag) ++ro.deterministic;
  }
  return ro;
}

}  // namespace

RunSummary Engine::run(const ProcessFactory& factory,
                       std::span<const Bit> inputs, Adversary& adversary,
                       const EngineOptions& options) {
  return run_impl(factory, inputs, adversary, options, nullptr);
}

RunSummary Engine::run(const ProcessFactory& factory,
                       std::span<const Bit> inputs, Adversary& adversary,
                       const EngineOptions& options, RunResult& full) {
  return run_impl(factory, inputs, adversary, options, &full);
}

RunSummary Engine::run_impl(const ProcessFactory& factory,
                            std::span<const Bit> inputs, Adversary& adversary,
                            const EngineOptions& options, RunResult* full) {
  SYNRAN_REQUIRE(!inputs.empty(), "need at least one process");
  SYNRAN_REQUIRE(options.t_budget <= inputs.size(),
                 "fault budget exceeds process count");
  const auto n = static_cast<std::uint32_t>(inputs.size());
  SeedSequence seeds(options.seed);

  ws_.prepare(n);
  auto& procs = ws_.procs_;
  auto& coins = ws_.coins_;
  for (std::uint32_t i = 0; i < n; ++i) {
    procs[i] = factory.make(i, n, inputs[i]);
    coins[i].reseed(seeds.stream(i));
  }

  adversary.begin(n, options.t_budget);

  obs::EngineObserver* observer = options.observer;
  if (observer != nullptr) {
    observer->on_run_begin(obs::RunInfo{
        n, options.t_budget, options.per_round_cap, options.seed,
        options.omission_budget, options.omission_round_cap,
        options.byzantine_budget, options.byzantine_round_cap});
  }

  // Always-on model audit (§3.1): cheap per-round predicates that validate
  // the adversary's spend and the engine's own delivery accounting.
  RunAuditor auditor;
  auditor.begin(n, options.t_budget, options.per_round_cap,
                options.omission_budget, options.omission_round_cap,
                options.byzantine_budget, options.byzantine_round_cap);
  auditor.set_strict_decisions(options.strict_decision_audit);

  DynBitset& alive = ws_.alive_;    // not crashed by the adversary
  DynBitset& halted = ws_.halted_;  // voluntarily stopped
  auto& payloads = ws_.payloads_;
  auto& receipts = ws_.receipts_;
  auto& have_receipt = ws_.have_receipt_;

  RunSummary sum;
  std::uint32_t budget_left = options.t_budget;
  std::uint32_t omission_budget_left = options.omission_budget;
  std::uint32_t corruption_budget_left = options.byzantine_budget;

  for (Round r = 1; r <= options.max_rounds; ++r) {
    // --- Phase A: local computation, coins, message preparation.
    bool anyone_sending = false;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (!alive.test(i) || halted.test(i)) {
        payloads[i].reset();
        continue;
      }
      const Receipt* prev = have_receipt[i] != 0 ? &receipts[i] : nullptr;
      payloads[i] = procs[i]->on_round(prev, coins[i]);
      if (!payloads[i].has_value()) {
        SYNRAN_CHECK_MSG(procs[i]->decided(),
                         "process halted without deciding");
        halted.set(i);
      } else {
        anyone_sending = true;
      }
    }

    // Decision bookkeeping. A process decides while digesting the previous
    // round's receipt, so "all decided as of phase A of round r" means the
    // protocol reached decision in round r-1 (paper counting).
    if (sum.rounds_to_decision == 0 && r > 1) {
      bool all_decided = true;
      for (std::uint32_t i = 0; i < n && all_decided; ++i)
        if (alive.test(i) && !procs[i]->decided()) all_decided = false;
      if (all_decided) sum.rounds_to_decision = r - 1;
    }

    auditor.on_phase_a(r, payloads, halted, procs);

    if (!anyone_sending) {
      // Everyone alive has halted: the last communication round was r-1.
      sum.rounds_to_halt = r - 1;
      sum.terminated = true;
      break;
    }

    obs::RoundObservation round_obs;
    if (observer != nullptr) {
      round_obs =
          observe_round(r, n, alive, halted, payloads, procs, budget_left);
      observer->on_round_begin(round_obs);
    }

    // --- Adversary intervention.
    const std::uint32_t cap = options.per_round_cap;
    WorldView world(r, n, alive, halted, payloads, procs, budget_left, cap,
                    omission_budget_left, options.omission_round_cap,
                    corruption_budget_left, options.byzantine_round_cap);
    FaultPlan plan = adversary.plan_round(world);
    auditor.on_plan(r, plan, payloads);
    if (observer != nullptr) observer->on_fault_plan(r, plan);

    // --- Phase B: delivery to surviving, non-halted receivers.
    std::uint64_t round_delivered = 0;
    std::uint64_t round_omitted = 0;
    std::uint64_t round_corrupted = 0;
    DynBitset receivers = alive;
    for (const auto& c : plan.crashes) receivers.reset(c.victim);
    {
      DynBitset active = receivers;
      halted.for_each_set([&](std::size_t i) { active.reset(i); });
      RoundTraffic traffic{payloads, &plan};
      auto delivered = deliver(n, traffic, active);
      const std::uint64_t before = sum.messages_delivered;
      active.for_each_set([&](std::size_t i) {
        receipts[i] = delivered[i];
        have_receipt[i] = 1;
        sum.messages_delivered += delivered[i].count;
      });
      round_delivered = sum.messages_delivered - before;
      for (const auto& o : plan.omissions)
        round_omitted += (o.drop_for & active).count();
      for (const auto& cd : plan.corruptions)
        for (const auto& fg : cd.forgeries)
          if (active.test(fg.target)) ++round_corrupted;
      auditor.on_deliveries(r, plan, payloads, active, round_delivered);
      if (observer != nullptr) observer->on_deliveries(r, round_delivered);
    }

    // Commit the crashes and the omission/corruption spend.
    budget_left -= static_cast<std::uint32_t>(plan.crash_count());
    sum.crashes_total += static_cast<std::uint32_t>(plan.crash_count());
    omission_budget_left -= static_cast<std::uint32_t>(plan.omission_count());
    sum.omissions_total += static_cast<std::uint32_t>(plan.omission_count());
    sum.messages_omitted += round_omitted;
    corruption_budget_left -=
        static_cast<std::uint32_t>(plan.corruption_count());
    sum.corruptions_total +=
        static_cast<std::uint32_t>(plan.corruption_count());
    sum.messages_corrupted += round_corrupted;
    if (full != nullptr)
      ws_.crashes_per_round_.push_back(
          static_cast<std::uint32_t>(plan.crash_count()));
    for (const auto& c : plan.crashes) alive.reset(c.victim);
    if (observer != nullptr) {
      round_obs.crashes = static_cast<std::uint32_t>(plan.crash_count());
      round_obs.delivered = round_delivered;
      round_obs.omissions = static_cast<std::uint32_t>(plan.omission_count());
      round_obs.omitted = round_omitted;
      round_obs.corruptions =
          static_cast<std::uint32_t>(plan.corruption_count());
      round_obs.corrupted = round_corrupted;
      observer->on_round_end(round_obs);
    }
  }

  // Harvest final status: agreement across surviving deciders, and the
  // validity verdict while the inputs are still in hand.
  bool first = true;
  bool agree = true;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!alive.test(i) || !procs[i]->decided()) continue;
    const Bit d = procs[i]->decision();
    sum.has_decision = true;
    if (first) {
      sum.decision = d;
      first = false;
    } else if (d != sum.decision) {
      agree = false;
    }
  }
  sum.agreement = sum.has_decision && agree;
  if (!sum.terminated) sum.rounds_to_halt = options.max_rounds;

  if (sum.has_decision) {
    const bool all0 = std::all_of(inputs.begin(), inputs.end(),
                                  [](Bit b) { return b == Bit::Zero; });
    const bool all1 = std::all_of(inputs.begin(), inputs.end(),
                                  [](Bit b) { return b == Bit::One; });
    if (all0 || all1) {
      const Bit required = all0 ? Bit::Zero : Bit::One;
      for (std::uint32_t i = 0; i < n; ++i) {
        if (!alive.test(i) || !procs[i]->decided()) continue;
        if (procs[i]->decision() != required) {
          sum.validity = false;
          break;
        }
      }
    }
  }

  if (full != nullptr) {
    full->rounds_to_decision = sum.rounds_to_decision;
    full->rounds_to_halt = sum.rounds_to_halt;
    full->terminated = sum.terminated;
    full->agreement = sum.agreement;
    full->has_decision = sum.has_decision;
    full->decision = sum.decision;
    full->crashes_total = sum.crashes_total;
    full->messages_delivered = sum.messages_delivered;
    full->omissions_total = sum.omissions_total;
    full->messages_omitted = sum.messages_omitted;
    full->corruptions_total = sum.corruptions_total;
    full->messages_corrupted = sum.messages_corrupted;
    full->crashes_per_round = ws_.crashes_per_round_;
    full->crashed.assign(n, false);
    full->decided.assign(n, false);
    full->decisions.assign(n, Bit::Zero);
    for (std::uint32_t i = 0; i < n; ++i) {
      if (!alive.test(i)) {
        full->crashed[i] = true;
        continue;
      }
      full->decided[i] = procs[i]->decided();
      if (full->decided[i]) full->decisions[i] = procs[i]->decision();
    }
  }

  if (observer != nullptr) {
    obs::RunObservation ro;
    ro.terminated = sum.terminated;
    ro.agreement = sum.agreement;
    ro.has_decision = sum.has_decision;
    ro.decision = to_int(sum.decision);
    ro.rounds_to_decision = sum.rounds_to_decision;
    ro.rounds_to_halt = sum.rounds_to_halt;
    ro.crashes_total = sum.crashes_total;
    ro.messages_delivered = sum.messages_delivered;
    ro.omissions_total = sum.omissions_total;
    ro.messages_omitted = sum.messages_omitted;
    ro.corruptions_total = sum.corruptions_total;
    ro.messages_corrupted = sum.messages_corrupted;
    ro.survivors = static_cast<std::uint32_t>(alive.count());
    observer->on_run_end(ro);
  }
  return sum;
}

RunResult run_once(const ProcessFactory& factory, std::vector<Bit> inputs,
                   Adversary& adversary, EngineOptions options) {
  EngineWorkspace ws;
  Engine e(ws);
  RunResult res;
  e.run(factory, inputs, adversary, options, res);
  return res;
}

bool validity_holds(const std::vector<Bit>& inputs, const RunResult& result) {
  if (!result.has_decision) return true;  // vacuous
  const bool all0 = std::all_of(inputs.begin(), inputs.end(),
                                [](Bit b) { return b == Bit::Zero; });
  const bool all1 = std::all_of(inputs.begin(), inputs.end(),
                                [](Bit b) { return b == Bit::One; });
  if (!all0 && !all1) return true;
  const Bit required = all0 ? Bit::Zero : Bit::One;
  for (std::size_t i = 0; i < result.decisions.size(); ++i) {
    if (result.crashed[i] || !result.decided[i]) continue;
    if (result.decisions[i] != required) return false;
  }
  return true;
}

}  // namespace synran
