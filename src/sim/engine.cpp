#include "sim/engine.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "net/fabric.hpp"
#include "obs/observer.hpp"
#include "sim/audit.hpp"

namespace synran {

namespace {

/// Snapshot of the engine state right after phase A, in observer vocabulary.
obs::RoundObservation observe_round(
    Round round, std::uint32_t n, const DynBitset& alive,
    const DynBitset& halted,
    const std::vector<std::optional<Payload>>& payloads,
    const std::vector<std::unique_ptr<Process>>& procs,
    std::uint32_t budget_left) {
  obs::RoundObservation ro;
  ro.round = round;
  ro.alive = static_cast<std::uint32_t>(alive.count());
  ro.halted = static_cast<std::uint32_t>(halted.count());
  ro.budget_left = budget_left;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (alive.test(i) && procs[i]->decided()) ++ro.decided;
    const auto& p = payloads[i];
    if (!p.has_value()) continue;
    ++ro.senders;
    if (payload::supports(*p, Bit::One)) ++ro.ones;
    if (payload::supports(*p, Bit::Zero)) ++ro.zeros;
    if (*p & payload::kDeterministicFlag) ++ro.deterministic;
  }
  return ro;
}

}  // namespace

Engine::Engine(const ProcessFactory& factory, std::vector<Bit> inputs,
               Adversary& adversary, EngineOptions options)
    : factory_(factory),
      inputs_(std::move(inputs)),
      adversary_(adversary),
      options_(options) {
  SYNRAN_REQUIRE(!inputs_.empty(), "need at least one process");
  SYNRAN_REQUIRE(options_.t_budget <= inputs_.size(),
                 "fault budget exceeds process count");
}

RunResult Engine::run() {
  const auto n = static_cast<std::uint32_t>(inputs_.size());
  SeedSequence seeds(options_.seed);

  std::vector<std::unique_ptr<Process>> procs;
  std::vector<std::unique_ptr<RandomCoinSource>> coins;
  procs.reserve(n);
  coins.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    procs.push_back(factory_.make(i, n, inputs_[i]));
    coins.push_back(std::make_unique<RandomCoinSource>(seeds.stream(i)));
  }

  adversary_.begin(n, options_.t_budget);

  obs::EngineObserver* observer = options_.observer;
  if (observer != nullptr) {
    observer->on_run_begin(obs::RunInfo{n, options_.t_budget,
                                        options_.per_round_cap,
                                        options_.seed});
  }

  // Always-on model audit (§3.1): cheap per-round predicates that validate
  // the adversary's spend and the engine's own delivery accounting.
  RunAuditor auditor;
  auditor.begin(n, options_.t_budget, options_.per_round_cap);
  auditor.set_strict_decisions(options_.strict_decision_audit);

  DynBitset alive(n, true);   // not crashed by the adversary
  DynBitset halted(n, false); // voluntarily stopped
  std::vector<std::optional<Payload>> payloads(n);
  std::vector<Receipt> receipts(n);
  std::vector<bool> have_receipt(n, false);

  RunResult res;
  res.crashed.assign(n, false);
  res.decided.assign(n, false);
  res.decisions.assign(n, Bit::Zero);
  std::uint32_t budget_left = options_.t_budget;

  for (Round r = 1; r <= options_.max_rounds; ++r) {
    // --- Phase A: local computation, coins, message preparation.
    bool anyone_sending = false;
    for (std::uint32_t i = 0; i < n; ++i) {
      if (!alive.test(i) || halted.test(i)) {
        payloads[i].reset();
        continue;
      }
      const Receipt* prev = have_receipt[i] ? &receipts[i] : nullptr;
      payloads[i] = procs[i]->on_round(prev, *coins[i]);
      if (!payloads[i].has_value()) {
        SYNRAN_CHECK_MSG(procs[i]->decided(),
                         "process halted without deciding");
        halted.set(i);
      } else {
        anyone_sending = true;
      }
    }

    // Decision bookkeeping. A process decides while digesting the previous
    // round's receipt, so "all decided as of phase A of round r" means the
    // protocol reached decision in round r-1 (paper counting).
    if (res.rounds_to_decision == 0 && r > 1) {
      bool all_decided = true;
      for (std::uint32_t i = 0; i < n && all_decided; ++i)
        if (alive.test(i) && !procs[i]->decided()) all_decided = false;
      if (all_decided) res.rounds_to_decision = r - 1;
    }

    auditor.on_phase_a(r, payloads, halted, procs);

    if (!anyone_sending) {
      // Everyone alive has halted: the last communication round was r-1.
      res.rounds_to_halt = r - 1;
      res.terminated = true;
      break;
    }

    obs::RoundObservation round_obs;
    if (observer != nullptr) {
      round_obs = observe_round(r, n, alive, halted, payloads, procs,
                                budget_left);
      observer->on_round_begin(round_obs);
    }

    // --- Adversary intervention.
    const std::uint32_t cap = options_.per_round_cap;
    WorldView world(r, n, alive, halted, payloads, procs, budget_left, cap);
    FaultPlan plan = adversary_.plan_round(world);
    auditor.on_plan(r, plan, payloads);
    if (observer != nullptr) observer->on_fault_plan(r, plan);

    // --- Phase B: delivery to surviving, non-halted receivers.
    std::uint64_t round_delivered = 0;
    DynBitset receivers = alive;
    for (const auto& c : plan.crashes) receivers.reset(c.victim);
    {
      DynBitset active = receivers;
      halted.for_each_set([&](std::size_t i) { active.reset(i); });
      RoundTraffic traffic{payloads, &plan};
      auto delivered = deliver(n, traffic, active);
      const std::uint64_t before = res.messages_delivered;
      active.for_each_set([&](std::size_t i) {
        receipts[i] = delivered[i];
        have_receipt[i] = true;
        res.messages_delivered += delivered[i].count;
      });
      round_delivered = res.messages_delivered - before;
      auditor.on_deliveries(r, plan, payloads, active, round_delivered);
      if (observer != nullptr) observer->on_deliveries(r, round_delivered);
    }

    // Commit the crashes.
    budget_left -= static_cast<std::uint32_t>(plan.crash_count());
    res.crashes_total += static_cast<std::uint32_t>(plan.crash_count());
    res.crashes_per_round.push_back(
        static_cast<std::uint32_t>(plan.crash_count()));
    for (const auto& c : plan.crashes) {
      alive.reset(c.victim);
      res.crashed[c.victim] = true;
    }
    if (observer != nullptr) {
      round_obs.crashes = static_cast<std::uint32_t>(plan.crash_count());
      round_obs.delivered = round_delivered;
      observer->on_round_end(round_obs);
    }
  }

  // Harvest final status.
  bool first = true;
  bool agree = true;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!alive.test(i)) continue;
    res.decided[i] = procs[i]->decided();
    if (!res.decided[i]) continue;
    res.decisions[i] = procs[i]->decision();
    res.has_decision = true;
    if (first) {
      res.decision = res.decisions[i];
      first = false;
    } else if (res.decisions[i] != res.decision) {
      agree = false;
    }
  }
  res.agreement = res.has_decision && agree;
  if (!res.terminated) res.rounds_to_halt = options_.max_rounds;

  if (observer != nullptr) {
    obs::RunObservation ro;
    ro.terminated = res.terminated;
    ro.agreement = res.agreement;
    ro.has_decision = res.has_decision;
    ro.decision = to_int(res.decision);
    ro.rounds_to_decision = res.rounds_to_decision;
    ro.rounds_to_halt = res.rounds_to_halt;
    ro.crashes_total = res.crashes_total;
    ro.messages_delivered = res.messages_delivered;
    ro.survivors = static_cast<std::uint32_t>(alive.count());
    observer->on_run_end(ro);
  }
  return res;
}

RunResult run_once(const ProcessFactory& factory, std::vector<Bit> inputs,
                   Adversary& adversary, EngineOptions options) {
  Engine e(factory, std::move(inputs), adversary, options);
  return e.run();
}

bool validity_holds(const std::vector<Bit>& inputs, const RunResult& result) {
  if (!result.has_decision) return true;  // vacuous
  const bool all0 = std::all_of(inputs.begin(), inputs.end(),
                                [](Bit b) { return b == Bit::Zero; });
  const bool all1 = std::all_of(inputs.begin(), inputs.end(),
                                [](Bit b) { return b == Bit::One; });
  if (!all0 && !all1) return true;
  const Bit required = all0 ? Bit::Zero : Bit::One;
  for (std::size_t i = 0; i < result.decisions.size(); ++i) {
    if (result.crashed[i] || !result.decided[i]) continue;
    if (result.decisions[i] != required) return false;
  }
  return true;
}

}  // namespace synran
