#include "sim/trace.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace synran {

std::uint32_t Trace::total_crashes() const {
  std::uint32_t acc = 0;
  for (const auto& r : rounds) acc += r.crashes;
  return acc;
}

std::uint32_t Trace::max_crashes_per_round() const {
  std::uint32_t mx = 0;
  for (const auto& r : rounds) mx = std::max(mx, r.crashes);
  return mx;
}

void TracingAdversary::begin(std::uint32_t n, std::uint32_t t_budget) {
  trace_ = Trace{};
  trace_.n = n;
  trace_.t_budget = t_budget;
  inner_->begin(n, t_budget);
}

FaultPlan TracingAdversary::plan_round(const WorldView& world) {
  FaultPlan plan = inner_->plan_round(world);

  RoundTrace rt;
  rt.round = world.round();
  rt.alive = static_cast<std::uint32_t>(world.alive().count());
  rt.halted = static_cast<std::uint32_t>(world.halted().count());
  rt.budget_left_before = world.budget_left();
  for (ProcessId i = 0; i < world.n(); ++i) {
    if (world.alive().test(i) && world.process(i).decided()) ++rt.decided;
    const auto p = world.payload(i);
    if (!p.has_value()) continue;
    ++rt.senders;
    if (payload::supports(*p, Bit::One)) ++rt.ones;
    if (payload::supports(*p, Bit::Zero)) ++rt.zeros;
    if (*p & payload::kDeterministicFlag) ++rt.deterministic;
  }
  rt.crashes = static_cast<std::uint32_t>(plan.crash_count());
  trace_.rounds.push_back(rt);
  return plan;
}

InvariantReport check_model_invariants(const Trace& trace) {
  InvariantReport report;
  std::uint32_t prev_alive = trace.n;
  std::uint32_t prev_halted = 0;
  std::uint32_t budget = trace.t_budget;
  std::uint32_t prev_crashes = 0;

  for (std::size_t i = 0; i < trace.rounds.size(); ++i) {
    const RoundTrace& r = trace.rounds[i];
    const std::string at = "round " + std::to_string(r.round) + ": ";

    if (r.alive > prev_alive)
      report.fail(at + "alive grew (" + std::to_string(prev_alive) + " -> " +
                  std::to_string(r.alive) + ")");
    if (i > 0 && prev_alive - r.alive != prev_crashes)
      report.fail(at + "alive drop does not match last round's crashes");
    if (r.halted < prev_halted)
      report.fail(at + "halted shrank");
    if (r.halted > r.alive)
      report.fail(at + "more halted than alive");
    if (r.senders != r.alive - r.halted)
      report.fail(at + "senders != alive - halted (" +
                  std::to_string(r.senders) + " vs " +
                  std::to_string(r.alive - r.halted) + ")");
    // Mask-carrying payloads (FloodMin, SynRan's det stage) may support
    // both values, so each side is bounded by the sender count separately.
    if (r.ones > r.senders || r.zeros > r.senders)
      report.fail(at + "payload value counts exceed senders");
    if (r.budget_left_before != budget)
      report.fail(at + "budget accounting diverged");
    if (r.crashes > budget)
      report.fail(at + "crashes exceed remaining budget");
    if (r.crashes > r.senders)
      report.fail(at + "crashed a non-sender");

    budget -= std::min(budget, r.crashes);
    prev_alive = r.alive;
    prev_halted = r.halted;
    prev_crashes = r.crashes;
  }
  return report;
}

}  // namespace synran
