#include "sim/rollout.hpp"

#include "common/check.hpp"
#include "net/fabric.hpp"

namespace synran {

ForkState ForkState::from_world(const WorldView& world) {
  ForkState s;
  s.n_ = world.n();
  s.round_ = world.round();
  s.alive_ = world.alive();
  s.halted_ = world.halted();
  s.procs_.reserve(s.n_);
  s.payloads_.assign(world.payloads().begin(), world.payloads().end());
  for (ProcessId i = 0; i < s.n_; ++i)
    s.procs_.push_back(world.process(i).clone());
  s.receipts_.assign(s.n_, Receipt{});
  s.have_receipt_.assign(s.n_, false);
  s.budget_left_ = world.budget_left();
  s.round_cap_ = world.round_cap();
  return s;
}

ForkState::ForkState(const ForkState& o)
    : n_(o.n_),
      round_(o.round_),
      alive_(o.alive_),
      halted_(o.halted_),
      payloads_(o.payloads_),
      receipts_(o.receipts_),
      have_receipt_(o.have_receipt_),
      budget_left_(o.budget_left_),
      round_cap_(o.round_cap_) {
  procs_.reserve(o.procs_.size());
  for (const auto& p : o.procs_) procs_.push_back(p->clone());
}

void ForkState::deliver_with(const FaultPlan& plan) {
  SYNRAN_CHECK_MSG(plan.crash_count() <= budget_left_,
                   "rollout plan exceeds global budget");
  SYNRAN_CHECK_MSG(round_cap_ == 0 || plan.crash_count() <= round_cap_,
                   "rollout plan exceeds per-round cap");
  for (const auto& c : plan.crashes)
    SYNRAN_CHECK_MSG(alive_.test(c.victim), "rollout crashed a dead process");

  DynBitset receivers = alive_;
  for (const auto& c : plan.crashes) receivers.reset(c.victim);
  DynBitset active = receivers;
  halted_.for_each_set([&](std::size_t i) { active.reset(i); });

  RoundTraffic traffic{payloads_, &plan};
  auto delivered = deliver(n_, traffic, active);
  active.for_each_set([&](std::size_t i) {
    receipts_[i] = delivered[i];
    have_receipt_[i] = true;
  });

  budget_left_ -= static_cast<std::uint32_t>(plan.crash_count());
  for (const auto& c : plan.crashes) alive_.reset(c.victim);
  ++round_;
}

bool ForkState::advance(
    const std::vector<std::unique_ptr<CoinSource>>& coins) {
  SYNRAN_CHECK(coins.size() == n_);
  bool anyone_sending = false;
  for (ProcessId i = 0; i < n_; ++i) {
    if (!alive_.test(i) || halted_.test(i)) {
      payloads_[i].reset();
      continue;
    }
    const Receipt* prev = have_receipt_[i] ? &receipts_[i] : nullptr;
    payloads_[i] = procs_[i]->on_round(prev, *coins[i]);
    if (!payloads_[i].has_value()) {
      SYNRAN_CHECK_MSG(procs_[i]->decided(),
                       "process halted without deciding");
      halted_.set(i);
    } else {
      anyone_sending = true;
    }
  }
  return anyone_sending;
}

bool ForkState::all_alive_decided() const {
  for (ProcessId i = 0; i < n_; ++i)
    if (alive_.test(i) && !procs_[i]->decided()) return false;
  return true;
}

std::optional<Bit> ForkState::unanimous_decision() const {
  std::optional<Bit> value;
  for (ProcessId i = 0; i < n_; ++i) {
    if (!alive_.test(i) || !procs_[i]->decided()) continue;
    const Bit d = procs_[i]->decision();
    if (!value.has_value()) {
      value = d;
    } else if (*value != d) {
      return std::nullopt;
    }
  }
  return value;
}

WorldView ForkState::world_view() const {
  return WorldView(round_, n_, alive_, halted_, payloads_, procs_,
                   budget_left_, round_cap_);
}

RolloutOutcome rollout(const WorldView& world, const FaultPlan& first_plan,
                       Adversary& continuation, std::uint64_t seed,
                       std::uint32_t max_extra_rounds) {
  ForkState st = ForkState::from_world(world);

  SeedSequence seeds(seed);
  std::vector<std::unique_ptr<CoinSource>> coins;
  coins.reserve(st.n());
  for (ProcessId i = 0; i < st.n(); ++i)
    coins.push_back(std::make_unique<RandomCoinSource>(seeds.stream(i)));

  RolloutOutcome out;
  st.deliver_with(first_plan);
  for (std::uint32_t step = 0; step < max_extra_rounds; ++step) {
    const bool anyone = st.advance(coins);
    ++out.extra_rounds;
    if (!anyone) {
      out.terminated = true;
      break;
    }
    FaultPlan plan = continuation.plan_round(st.world_view());
    st.deliver_with(plan);
  }

  const auto decision = st.unanimous_decision();
  out.agreement = st.all_alive_decided() ? decision.has_value() : true;
  out.decided_one = decision.has_value() && *decision == Bit::One;
  return out;
}

}  // namespace synran
