#include "sim/audit.hpp"

#include <sstream>

#include "common/check.hpp"
#include "sim/process.hpp"

namespace synran {

void RunAuditor::begin(std::uint32_t n, std::uint32_t t_budget,
                       std::uint32_t per_round_cap,
                       std::uint32_t omission_budget,
                       std::uint32_t omission_round_cap,
                       std::uint32_t byzantine_budget,
                       std::uint32_t byzantine_round_cap) {
  SYNRAN_REQUIRE(n >= 1, "auditor needs at least one process");
  n_ = n;
  t_budget_ = t_budget;
  per_round_cap_ = per_round_cap;
  cum_crashes_ = 0;
  omission_budget_ = omission_budget;
  omission_round_cap_ = omission_round_cap;
  cum_omissions_ = 0;
  byzantine_budget_ = byzantine_budget;
  byzantine_round_cap_ = byzantine_round_cap;
  cum_corruptions_ = 0;
  crashed_ = DynBitset(n);
  crash_round_.assign(n, 0);
  was_decided_.assign(n, false);
  decision_was_.assign(n, Bit::Zero);
  was_halted_.assign(n, false);
}

void RunAuditor::fail(Round round, const std::string& what) const {
  std::ostringstream os;
  os << "audit: round " << round << ": " << what;
  throw InvariantError(os.str());
}

void RunAuditor::on_phase_a(
    Round round, std::span<const std::optional<Payload>> payloads,
    const DynBitset& halted,
    std::span<const std::unique_ptr<Process>> processes) {
  SYNRAN_CHECK_MSG(n_ > 0, "RunAuditor used before begin()");
  if (payloads.size() != n_ || halted.size() != n_ ||
      processes.size() != n_) {
    fail(round, "phase-A views disagree about the process count");
  }
  for (std::uint32_t i = 0; i < n_; ++i) {
    const Process& p = *processes[i];
    if (crashed_.test(i)) {
      if (payloads[i].has_value()) {
        std::ostringstream os;
        os << "process " << i << " broadcast a payload although it was "
           << "crashed in round " << crash_round_[i]
           << " — the dead must stay silent";
        fail(round, os.str());
      }
      continue;  // internal state of the dead is unobservable in the model
    }
    if (was_halted_[i]) {
      if (!halted.test(i)) {
        std::ostringstream os;
        os << "process " << i << " resumed after halting — STOP is final";
        fail(round, os.str());
      }
      if (!p.decided() || p.decision() != decision_was_[i]) {
        std::ostringstream os;
        os << "halted process " << i << " changed its verdict (halted with "
           << "decision " << to_int(decision_was_[i]) << ")";
        fail(round, os.str());
      }
    }
    if (halted.test(i)) {
      if (payloads[i].has_value()) {
        std::ostringstream os;
        os << "halted process " << i << " kept broadcasting";
        fail(round, os.str());
      }
      if (!p.decided()) {
        std::ostringstream os;
        os << "process " << i << " halted without deciding";
        fail(round, os.str());
      }
    }
    if (strict_decisions_ && was_decided_[i]) {
      if (!p.decided()) {
        std::ostringstream os;
        os << "process " << i << " rescinded its decision under the "
           << "strict (latching) policy";
        fail(round, os.str());
      }
      if (p.decision() != decision_was_[i]) {
        std::ostringstream os;
        os << "process " << i << " flipped its decision from "
           << to_int(decision_was_[i]) << " to " << to_int(p.decision());
        fail(round, os.str());
      }
    }
    was_decided_[i] = p.decided();
    if (p.decided()) decision_was_[i] = p.decision();
    was_halted_[i] = halted.test(i);
  }
}

void RunAuditor::on_plan(Round round, const FaultPlan& plan,
                         std::span<const std::optional<Payload>> payloads) {
  SYNRAN_CHECK_MSG(n_ > 0, "RunAuditor used before begin()");
  const auto k = static_cast<std::uint32_t>(plan.crash_count());
  if (per_round_cap_ != 0 && k > per_round_cap_) {
    std::ostringstream os;
    os << "plan crashes " << k << " processes but the per-round cap is "
       << per_round_cap_;
    fail(round, os.str());
  }
  if (cum_crashes_ + k > t_budget_) {
    std::ostringstream os;
    os << "plan crashes " << k << " more processes on top of "
       << cum_crashes_ << " already crashed, exceeding the fault budget t="
       << t_budget_;
    fail(round, os.str());
  }
  DynBitset in_plan(n_);
  for (const auto& c : plan.crashes) {
    if (c.victim >= n_) {
      std::ostringstream os;
      os << "crash victim " << c.victim << " is not a process (n=" << n_
         << ")";
      fail(round, os.str());
    }
    if (crashed_.test(c.victim)) {
      std::ostringstream os;
      os << "process " << c.victim << " re-crashed — it already failed in "
         << "round " << crash_round_[c.victim];
      fail(round, os.str());
    }
    if (in_plan.test(c.victim)) {
      std::ostringstream os;
      os << "process " << c.victim << " appears twice in one fault plan";
      fail(round, os.str());
    }
    if (!payloads[c.victim].has_value()) {
      std::ostringstream os;
      os << "plan crashes process " << c.victim
         << ", which is not sending this round (crashing the silent "
         << "buys the adversary nothing and is outside the model)";
      fail(round, os.str());
    }
    if (c.deliver_to.size() != n_) {
      std::ostringstream os;
      os << "deliver_to mask for victim " << c.victim << " has size "
         << c.deliver_to.size() << ", expected n=" << n_;
      fail(round, os.str());
    }
    in_plan.set(c.victim);
  }
  const auto m = static_cast<std::uint32_t>(plan.omission_count());
  if (omission_round_cap_ != 0 && m > omission_round_cap_) {
    std::ostringstream os;
    os << "plan issues " << m << " omission directives but the per-round "
       << "omission cap is " << omission_round_cap_;
    fail(round, os.str());
  }
  if (cum_omissions_ + m > omission_budget_) {
    std::ostringstream os;
    os << "plan issues " << m << " omission directives on top of "
       << cum_omissions_ << " already spent, exceeding the omission budget "
       << omission_budget_
       << (omission_budget_ == 0
               ? " (omissions are forbidden under the fail-stop model "
                 "unless EngineOptions grants a budget)"
               : "");
    fail(round, os.str());
  }
  DynBitset omitted(n_);
  for (const auto& o : plan.omissions) {
    if (o.sender >= n_) {
      std::ostringstream os;
      os << "omission sender " << o.sender << " is not a process (n=" << n_
         << ")";
      fail(round, os.str());
    }
    if (in_plan.test(o.sender)) {
      std::ostringstream os;
      os << "process " << o.sender << " is both crashed and omitted in one "
         << "fault plan — a crash's deliver_to already fixes its delivery";
      fail(round, os.str());
    }
    if (omitted.test(o.sender)) {
      std::ostringstream os;
      os << "omission sender " << o.sender
         << " appears twice in one fault plan";
      fail(round, os.str());
    }
    if (!payloads[o.sender].has_value()) {
      std::ostringstream os;
      os << "plan omits messages of process " << o.sender
         << ", which is not sending this round (an omission for a "
         << "non-sender suppresses nothing and is outside the model)";
      fail(round, os.str());
    }
    if (o.drop_for.size() != n_) {
      std::ostringstream os;
      os << "drop_for mask for omission sender " << o.sender << " has size "
         << o.drop_for.size() << ", expected n=" << n_;
      fail(round, os.str());
    }
    omitted.set(o.sender);
  }
  const auto b = static_cast<std::uint32_t>(plan.corruption_count());
  if (byzantine_round_cap_ != 0 && b > byzantine_round_cap_) {
    std::ostringstream os;
    os << "plan issues " << b << " corruption directives but the per-round "
       << "corruption cap is " << byzantine_round_cap_;
    fail(round, os.str());
  }
  if (cum_corruptions_ + b > byzantine_budget_) {
    std::ostringstream os;
    os << "plan issues " << b << " corruption directives on top of "
       << cum_corruptions_ << " already spent, exceeding the byzantine "
       << "budget " << byzantine_budget_
       << (byzantine_budget_ == 0
               ? " (corrupted values are forbidden under the fail-stop model "
                 "unless EngineOptions grants a byzantine budget)"
               : "");
    fail(round, os.str());
  }
  DynBitset corrupted(n_);
  DynBitset forged(n_);
  for (const auto& cd : plan.corruptions) {
    if (cd.sender >= n_) {
      std::ostringstream os;
      os << "corruption sender " << cd.sender << " is not a process (n="
         << n_ << ")";
      fail(round, os.str());
    }
    if (in_plan.test(cd.sender)) {
      std::ostringstream os;
      os << "process " << cd.sender << " is both crashed and corrupted in "
         << "one fault plan — a crash's deliver_to already fixes its "
         << "delivery";
      fail(round, os.str());
    }
    if (omitted.test(cd.sender)) {
      std::ostringstream os;
      os << "process " << cd.sender << " is both omitted and corrupted in "
         << "one fault plan — an omitted link has no value left to forge";
      fail(round, os.str());
    }
    if (corrupted.test(cd.sender)) {
      std::ostringstream os;
      os << "corruption sender " << cd.sender
         << " appears twice in one fault plan";
      fail(round, os.str());
    }
    if (!payloads[cd.sender].has_value()) {
      std::ostringstream os;
      os << "plan corrupts messages of process " << cd.sender
         << ", which is not sending this round (there is no message whose "
         << "value could be forged)";
      fail(round, os.str());
    }
    forged.clear_all();
    for (const auto& fg : cd.forgeries) {
      if (fg.target >= n_) {
        std::ostringstream os;
        os << "forgery target " << fg.target << " of corruption sender "
           << cd.sender << " is not a process (n=" << n_ << ")";
        fail(round, os.str());
      }
      if (forged.test(fg.target)) {
        std::ostringstream os;
        os << "forgery target " << fg.target << " of corruption sender "
           << cd.sender << " appears twice in one directive";
        fail(round, os.str());
      }
      forged.set(fg.target);
    }
    corrupted.set(cd.sender);
  }
  for (const auto& c : plan.crashes) {
    crashed_.set(c.victim);
    crash_round_[c.victim] = round;
  }
  cum_crashes_ += k;
  cum_omissions_ += m;
  cum_corruptions_ += b;
}

void RunAuditor::on_deliveries(
    Round round, const FaultPlan& plan,
    std::span<const std::optional<Payload>> payloads,
    const DynBitset& active_receivers, std::uint64_t delivered) {
  SYNRAN_CHECK_MSG(n_ > 0, "RunAuditor used before begin()");
  DynBitset crashed_now(n_);
  for (const auto& c : plan.crashes) crashed_now.set(c.victim);

  std::uint64_t full_senders = 0;
  for (std::uint32_t i = 0; i < n_; ++i) {
    if (payloads[i].has_value() && !crashed_now.test(i)) ++full_senders;
  }
  std::uint64_t expected = full_senders * active_receivers.count();
  for (const auto& c : plan.crashes) {
    expected += (c.deliver_to & active_receivers).count();
  }
  std::uint64_t omitted = 0;
  for (const auto& o : plan.omissions) {
    omitted += (o.drop_for & active_receivers).count();
  }
  expected -= omitted;
  if (delivered != expected) {
    std::ostringstream os;
    os << "delivered " << delivered << " point-to-point messages but the "
       << "surviving-sender broadcast count is " << expected << " ("
       << full_senders << " full broadcasts to "
       << active_receivers.count() << " active receivers plus "
       << plan.crash_count() << " partial deliveries minus " << omitted
       << " omitted links)";
    fail(round, os.str());
  }
}

void AuditedAdversary::begin(std::uint32_t n, std::uint32_t t_budget) {
  auditor_.begin(n, t_budget, 0);
  begun_ = true;
  omission_budget_synced_ = false;
  inner_->begin(n, t_budget);
}

FaultPlan AuditedAdversary::plan_round(const WorldView& world) {
  SYNRAN_CHECK_MSG(begun_, "AuditedAdversary::plan_round before begin()");
  auditor_.set_per_round_cap(world.round_cap());
  auditor_.set_omission_round_cap(world.omission_round_cap());
  auditor_.set_byzantine_round_cap(world.corruption_round_cap());
  if (!omission_budget_synced_) {
    auditor_.set_omission_budget(world.omission_budget_left());
    auditor_.set_byzantine_budget(world.corruption_budget_left());
    omission_budget_synced_ = true;
  }
  if (world.budget_left() != auditor_.budget_left()) {
    std::ostringstream os;
    os << "audit: round " << world.round() << ": engine reports "
       << world.budget_left() << " crashes left but the audited spend "
       << "leaves " << auditor_.budget_left();
    throw InvariantError(os.str());
  }
  if (world.omission_budget_left() != auditor_.omission_budget_left()) {
    std::ostringstream os;
    os << "audit: round " << world.round() << ": engine reports "
       << world.omission_budget_left() << " omissions left but the audited "
       << "spend leaves " << auditor_.omission_budget_left();
    throw InvariantError(os.str());
  }
  if (world.corruption_budget_left() != auditor_.corruption_budget_left()) {
    std::ostringstream os;
    os << "audit: round " << world.round() << ": engine reports "
       << world.corruption_budget_left() << " corruptions left but the "
       << "audited spend leaves " << auditor_.corruption_budget_left();
    throw InvariantError(os.str());
  }
  auditor_.on_phase_a(world.round(), world.payloads(), world.halted(),
                      world.processes());
  FaultPlan plan = inner_->plan_round(world);
  auditor_.on_plan(world.round(), plan, world.payloads());
  return plan;
}

}  // namespace synran
