// The synchronous execution engine.
//
// Drives n Process instances against one Adversary under the round structure
// of §3.1, enforcing the fault budget, collecting the execution metrics every
// experiment needs (rounds to decision, crashes per round, agreement /
// validity verdicts), and staying bit-for-bit reproducible from a seed.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/ids.hpp"
#include "common/rng.hpp"
#include "sim/adversary.hpp"
#include "sim/process.hpp"
#include "sim/workspace.hpp"

namespace synran {

namespace obs {
class EngineObserver;
}  // namespace obs

struct EngineOptions {
  /// Global fault budget t (max processes the adversary may crash).
  std::uint32_t t_budget = 0;
  /// Optional per-round crash cap (0 = no per-round cap). The lower-bound
  /// adversary class B uses 4√(n·ln n)+1 (§3.2).
  std::uint32_t per_round_cap = 0;
  /// Global omission budget: max omission directives (one live sender's
  /// message suppressed for a receiver subset) over the whole execution.
  /// 0 — the default — forbids omissions entirely, preserving the paper's
  /// fail-stop model bit for bit.
  std::uint32_t omission_budget = 0;
  /// Optional per-round omission-directive cap (0 = no per-round cap),
  /// mirroring per_round_cap.
  std::uint32_t omission_round_cap = 0;
  /// Global byzantine budget: max corruption directives (one live sender's
  /// message replaced by per-receiver forged values) over the whole
  /// execution. 0 — the default — forbids corrupted values entirely,
  /// preserving the paper's fail-stop model bit for bit.
  std::uint32_t byzantine_budget = 0;
  /// Optional per-round corruption-directive cap (0 = no per-round cap),
  /// mirroring per_round_cap.
  std::uint32_t byzantine_round_cap = 0;
  /// Safety valve: abort the run (marking it non-terminating) after this many
  /// rounds. Must comfortably exceed any expected run length.
  std::uint32_t max_rounds = 100000;
  /// Master seed; every process stream derives from it.
  std::uint64_t seed = 1;
  /// Consumed by the batch executor, not the engine: how many times a
  /// repetition that throws is re-attempted with its identical per-rep
  /// seeds before it counts as failed (0 = no retries). Retrying with the
  /// same seeds preserves determinism — a rep either produces its one
  /// canonical RunSummary or is quarantined/fails the batch, depending on
  /// RepeatSpec::policy.
  std::uint32_t max_rep_retries = 0;
  /// Audit decisions as latching (see RunAuditor::set_strict_decisions).
  /// Leave off for SynRan-family protocols, which rescind until STOP.
  bool strict_decision_audit = false;
  /// Optional observability hook (borrowed, may be null): receives the
  /// round-granular callbacks of obs/observer.hpp. Use obs::MultiObserver to
  /// install several. Observers see, they never steer.
  obs::EngineObserver* observer = nullptr;
};

/// Outcome of one execution.
struct RunResult {
  /// First round by whose end every non-crashed process had decided;
  /// 0 if that never happened (see `terminated`).
  std::uint32_t rounds_to_decision = 0;
  /// Round by whose end every non-crashed process had halted.
  std::uint32_t rounds_to_halt = 0;
  bool terminated = false;  ///< all survivors decided within max_rounds

  bool agreement = false;       ///< all survivor decisions equal
  bool has_decision = false;    ///< at least one survivor decided
  Bit decision = Bit::Zero;     ///< the common value when agreement holds

  std::uint32_t crashes_total = 0;
  std::vector<std::uint32_t> crashes_per_round;
  /// Total point-to-point deliveries (communication complexity; a broadcast
  /// to k receivers counts k).
  std::uint64_t messages_delivered = 0;
  /// Omission directives spent / links suppressed (see RunSummary).
  std::uint32_t omissions_total = 0;
  std::uint64_t messages_omitted = 0;
  /// Corruption directives spent / links forged (see RunSummary).
  std::uint32_t corruptions_total = 0;
  std::uint64_t messages_corrupted = 0;

  /// Final per-process status (survivors only meaningful).
  std::vector<bool> crashed;
  std::vector<bool> decided;
  std::vector<Bit> decisions;
};

/// Runs executions to completion. An Engine binds to one EngineWorkspace
/// and is reusable: each run() resets the workspace buffers in place, so a
/// batch of repetitions pays no per-rep allocation for engine state. One
/// engine serves one thread at a time.
class Engine {
 public:
  explicit Engine(EngineWorkspace& workspace) : ws_(workspace) {}

  /// Summary-only hot path: runs one execution and returns the aggregate
  /// scalars. Per-process status vectors and per-round crash counts are not
  /// materialized. `inputs` may alias workspace.inputs().
  RunSummary run(const ProcessFactory& factory, std::span<const Bit> inputs,
                 Adversary& adversary, const EngineOptions& options);

  /// Full-detail run: additionally fills `full` with the per-process status
  /// vectors and per-round crash counts (narration, audits, tests).
  RunSummary run(const ProcessFactory& factory, std::span<const Bit> inputs,
                 Adversary& adversary, const EngineOptions& options,
                 RunResult& full);

 private:
  RunSummary run_impl(const ProcessFactory& factory,
                      std::span<const Bit> inputs, Adversary& adversary,
                      const EngineOptions& options, RunResult* full);

  EngineWorkspace& ws_;
};

/// Convenience: run one execution with a throwaway workspace and collect the
/// full result.
RunResult run_once(const ProcessFactory& factory, std::vector<Bit> inputs,
                   Adversary& adversary, EngineOptions options);

/// Checks validity against the inputs: if all inputs equal v, the decision
/// (when any) must be v. Returns true when the validity condition holds.
bool validity_holds(const std::vector<Bit>& inputs, const RunResult& result);

}  // namespace synran
