// Execution tracing and model-invariant checking.
//
// A TraceRecorder observes an execution round by round (installed as an
// adversary wrapper, so it sees exactly the full-information view the model
// grants) and records the quantities the paper's arguments track: live and
// halted populations, the 1/0 composition of each round's traffic, and the
// adversary's spend. TraceInvariants then re-checks the §3.1 model rules on
// the recorded trace — monotone populations, budget discipline, silence of
// the dead — so property tests can assert them wholesale.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/adversary.hpp"

namespace synran {

/// One round's observables, captured at the adversary decision point.
struct RoundTrace {
  Round round = 0;
  std::uint32_t alive = 0;    ///< not yet crashed (halted included)
  std::uint32_t halted = 0;   ///< voluntarily stopped
  std::uint32_t senders = 0;  ///< broadcast a payload this round
  std::uint32_t ones = 0;     ///< senders supporting 1
  std::uint32_t zeros = 0;    ///< senders supporting 0
  std::uint32_t deterministic = 0;  ///< senders in SynRan's det stage
  std::uint32_t decided = 0;  ///< processes with decided() true
  std::uint32_t crashes = 0;  ///< victims of this round's plan
  std::uint32_t budget_left_before = 0;
};

/// A recorded execution.
struct Trace {
  std::uint32_t n = 0;
  std::uint32_t t_budget = 0;
  std::vector<RoundTrace> rounds;

  std::uint32_t total_crashes() const;
  /// Largest crash count in any single round.
  std::uint32_t max_crashes_per_round() const;
};

/// Wraps an inner adversary, recording a Trace while delegating every
/// decision. Install in the engine exactly like any adversary.
class TracingAdversary final : public Adversary {
 public:
  explicit TracingAdversary(Adversary& inner) : inner_(&inner) {}

  void begin(std::uint32_t n, std::uint32_t t_budget) override;
  FaultPlan plan_round(const WorldView& world) override;
  const char* name() const override { return "tracing"; }

  const Trace& trace() const { return trace_; }

 private:
  Adversary* inner_;
  Trace trace_;
};

/// Result of checking a trace against the §3.1 model invariants.
struct InvariantReport {
  bool ok = true;
  std::vector<std::string> violations;

  void fail(std::string what) {
    ok = false;
    violations.push_back(std::move(what));
  }
};

/// Checks: alive non-increasing; halted non-decreasing; senders ≤ alive −
/// halted; ones + zeros bounded by senders (a det-stage payload may carry
/// both bits, so the sum may exceed senders only by `deterministic`);
/// crashes ≤ budget remaining and consistent with the alive drop; decided
/// non-decreasing only while nobody rescinds (SynRan may rescind, so the
/// decided check is optional).
InvariantReport check_model_invariants(const Trace& trace);

}  // namespace synran
