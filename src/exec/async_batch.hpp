// Batch-execution vocabulary for the asynchronous (event-driven) engine:
// per-rep factories for schedulers and delay models, the async repeat spec,
// and the registry-backed aggregate.
//
// Seeding extends schema 2 (exec/batch.hpp) with one more per-rep stream:
// with S = SeedSequence(seed), repetition k of an async batch uses
//   inputs     Xoshiro256(S.stream(kInputStreamBase + k))
//   scheduler  S.stream(kAdversaryStreamBase + k)   (the async adversary)
//   engine     S.stream(kEngineStreamBase + k)      (per-process coins)
//   delay      S.stream(kAsyncDelayStreamBase + k)  (link-delay randomness)
// Each stream is a pure function of (master seed, k), so serial, sharded,
// and resumed batches reproduce identical executions — the same property
// the synchronous executor proves with its ExecEquivalence suite.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "async/core.hpp"
#include "exec/batch.hpp"

namespace synran {

/// Stream-id base for per-rep delay-model seeds; disjoint from the input,
/// adversary, and engine bases for any batch below ~2^31 reps.
inline constexpr std::uint64_t kAsyncDelayStreamBase =
    0x44454c4159ULL;  // "DELAY"

/// The delay-model seed for repetition `rep` under master seed `seed`.
std::uint64_t delay_seed_for_rep(std::uint64_t seed, std::size_t rep);

/// Builds a fresh scheduler (the async adversary) for one repetition.
/// Invoked from worker threads when a batch runs parallel, so factories
/// must be safe to call concurrently (stateless lambdas are).
using AsyncSchedulerFactory =
    std::function<std::unique_ptr<AsyncScheduler>(std::uint64_t seed)>;

/// Builds a fresh delay model per repetition. Returning nullptr selects the
/// adversary-held default (pure asynchrony — the scheduler alone decides
/// delivery order, and the pre-event-loop engine's exact behavior).
using AsyncDelayFactory =
    std::function<std::unique_ptr<DelayModel>(std::uint64_t seed)>;

AsyncSchedulerFactory fifo_scheduler_factory();
AsyncSchedulerFactory random_scheduler_factory();
AsyncSchedulerFactory laggard_scheduler_factory();
AsyncSchedulerFactory stall_scheduler_factory();

/// The adversary-held default (factory returns nullptr every rep).
AsyncDelayFactory held_delay_factory();
AsyncDelayFactory fixed_delay_factory(SimTime latency);
AsyncDelayFactory uniform_delay_factory(SimTime lo, SimTime hi);
/// Adversary-held before `gst`, forced delivery within `bound` after —
/// the DLS partial-synchrony link model.
AsyncDelayFactory gst_delay_factory(SimTime gst, SimTime bound);

/// Aggregate over repeated async executions, registry-backed like
/// RepeatedRunStats so a whole batch serializes via metrics().to_json().
///
/// Registry contents:
///   summaries  rounds_to_decision, ticks_to_decision (terminated reps),
///              crashes_used, messages_delivered, coin_flips, timers_fired,
///              omissions_used, messages_omitted (all reps)
///   counters   reps, agreement_failures, validity_failures,
///              non_terminated, decided_one, reps_quarantined
class AsyncRunStats {
 public:
  AsyncRunStats();

  /// Folds one repetition in. Fold order fixes the floating-point sequence;
  /// parallel batches fold in rep order to match the serial run exactly.
  void add(const AsyncRunResult& rep);

  void note_quarantined(RepFailure failure);

  const Summary& rounds_to_decision() const;
  /// Simulated ticks until the last live process decided (terminated reps;
  /// always 0 under pure asynchrony, where time never advances).
  const Summary& ticks_to_decision() const;
  const Summary& crashes_used() const;
  const Summary& messages_delivered() const;
  const Summary& coin_flips() const;
  const Summary& timers_fired() const;
  const Summary& omissions_used() const;
  const Summary& messages_omitted() const;

  std::size_t reps() const;
  std::size_t agreement_failures() const;
  std::size_t validity_failures() const;
  std::size_t non_terminated() const;
  std::size_t decided_one() const;
  std::size_t reps_quarantined() const;

  const std::vector<RepFailure>& failures() const { return failures_; }

  bool all_safe() const {
    return agreement_failures() == 0 && validity_failures() == 0 &&
           non_terminated() == 0;
  }

  /// Exact snapshot for the synran-ckpt/1 ledger (registry snapshot +
  /// quarantine list), the async mirror of
  /// RepeatedRunStats::checkpoint_json: a restored aggregate reproduces the
  /// original report byte-for-byte.
  obs::JsonValue checkpoint_json() const;
  /// Inverse of checkpoint_json(). Throws ArgumentError on a malformed or
  /// foreign payload (missing pre-registered metrics, bad failure entries).
  static AsyncRunStats from_checkpoint(const obs::JsonValue& payload);

  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

 private:
  obs::MetricsRegistry metrics_;
  std::vector<RepFailure> failures_;
};

struct AsyncRepeatSpec {
  std::uint32_t n = 0;
  InputPattern pattern = InputPattern::Random;
  /// Per-rep template: seed and delay are re-derived/rebuilt per rep; the
  /// observer (if any) receives the serial callback stream at any thread
  /// count, exactly like the synchronous executor.
  AsyncEngineOptions engine;
  std::size_t reps = 1;
  std::uint64_t seed = 1;  ///< master seed for the whole batch
  /// 1 = serial, N > 1 = workers, 0 = auto (SYNRAN_THREADS, else serial).
  unsigned threads = 0;
  FailurePolicy policy = FailurePolicy::FailFast;
  /// Extra attempts for a throwing rep before the policy applies (per-rep
  /// seeds are pure, so a retry reproduces the same execution or fails
  /// again deterministically).
  std::uint32_t max_rep_retries = 0;
};

/// Checkpoint-ledger cell key for an async sweep cell: fingerprints the
/// protocol, the caller's tag (which names the scheduler/delay pairing —
/// factories are opaque functions, so the tag is their identity), every
/// AsyncRepeatSpec field a rep's execution depends on, and the seed schema.
/// The async mirror of spec_cell_key; a resumed run only reloads a cell
/// whose recorded key still matches.
std::string async_spec_cell_key(const AsyncRepeatSpec& spec,
                                std::string_view protocol,
                                std::string_view tag);

}  // namespace synran
