// Deterministic thread-pooled batch execution.
//
// BatchExecutor runs the repetitions of one RepeatSpec across worker
// threads and produces a RepeatedRunStats that is bit-identical to the
// serial run at any thread count. Three design rules make that hold:
//
//  1. Static seed-indexed schedule. Repetition k always derives its inputs,
//     adversary, and engine seed from per-rep streams of the master seed
//     (seeding schema 2, exec/batch.hpp), never from shared mutable state —
//     so which worker runs a rep, and in what order, cannot change what the
//     rep computes. Worker w owns reps {k : k mod threads == w}.
//  2. Reusable workspaces. Each worker drives one Engine bound to one
//     EngineWorkspace, so a worker's thousands of reps reuse one set of
//     buffers instead of reallocating per rep.
//  3. Rep-order aggregation. Workers record a lightweight RunSummary per
//     rep into disjoint slots of one pre-sized array; after the join, the
//     summaries are folded into the registry serially in rep order. Folding
//     per-rep scalars in rep order reproduces the serial run's
//     floating-point operations exactly — which a tree-merge of per-worker
//     Welford accumulators would not.
//
// Engine observers compose with all of this: a serial batch fires the
// configured observer live, while a parallel batch gives each worker a
// private obs::TraceRecorder, buffers every callback of a rep in that rep's
// outcome slot, and replays the buffers into the real observer serially in
// rep order during the fold. The observer therefore sees the exact serial
// callback stream at any thread count — traces written through it are
// byte-identical to a 1-thread run (both trace formats; ctest-proven). The
// replay happens only for batches that complete: a FailFast abort or a stop
// request throws before the fold, so a parallel trace may then miss events
// a serial run would have flushed before its own throw.
//
// Failure domains (see exec/batch.hpp): a rep that throws is retried with
// its identical per-rep seeds up to EngineOptions::max_rep_retries times,
// then either aborts the batch as a RepError (FailurePolicy::FailFast, the
// default) or is quarantined as a structured RepFailure while the
// survivors fold normally (FailurePolicy::Quarantine). Both policies
// produce thread-count-invariant results: a rep's outcome is a pure
// function of (master seed, rep), never of scheduling. The executor also
// polls the cooperative stop flag (exec/stopper.hpp) between reps —
// in-flight reps finish, then the batch throws Interrupted so callers can
// flush checkpoints and partial artifacts.
//
// This subsystem is the one place in the repo allowed to use threading
// primitives (tools/synran_lint enforces the boundary with its `threads`
// rule).
#pragma once

#include "exec/batch.hpp"
#include "sim/process.hpp"

namespace synran::exec {

/// Resolves a requested thread count: N > 0 means N workers; 0 means auto —
/// the SYNRAN_THREADS environment variable when set (clamped to ≥ 1), else 1
/// (serial, the deterministic default that never surprises a caller).
unsigned resolve_threads(unsigned requested);

struct ExecOptions {
  /// Worker threads; interpreted by resolve_threads.
  unsigned threads = 0;
};

/// Runs batches of independent seeded executions. Stateless apart from its
/// options; one executor may run many batches.
class BatchExecutor {
 public:
  BatchExecutor() = default;
  explicit BatchExecutor(ExecOptions options) : options_(options) {}

  /// Runs spec.reps executions and returns the aggregate. spec.threads,
  /// when non-zero, overrides the executor's own thread option for this
  /// batch. A configured spec.engine.observer receives the serial callback
  /// stream at any thread count (buffered + rep-order replay when
  /// parallel).
  RepeatedRunStats run(const ProcessFactory& factory,
                       const AdversaryFactory& adversaries,
                       const RepeatSpec& spec) const;

  ExecOptions options() const { return options_; }

 private:
  ExecOptions options_;
};

}  // namespace synran::exec
