// Cooperative, signal-safe stop flag for long batches.
//
// This is the repo's one point of contact with POSIX signals (lint rule
// `signals` bans signal handling everywhere else): entry points that run
// long sweeps — the CLI and the bench harness — call
// install_stop_handlers() once, and SIGINT/SIGTERM then latch a
// sig_atomic_t flag instead of killing the process. The executor polls
// stop_requested() between repetitions, finishes the reps already in
// flight, and throws Interrupted; callers catch it, flush checkpoints and
// partial artifacts, and exit with the distinct code 3 (see the exit-code
// table in README.md).
//
// The library never installs handlers on its own: embedders who want
// default signal semantics keep them, and tests drive the same code path
// deterministically through request_stop() / clear_stop().
#pragma once

#include <stdexcept>

namespace synran::exec {

/// A batch was stopped between repetitions after a stop request. The
/// message reports how many reps had completed. Statistics already folded
/// are discarded by the throw; completed *cells* survive in the checkpoint
/// ledger, which is the resume unit.
class Interrupted : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Routes SIGINT and SIGTERM to the stop flag. Idempotent; call from a
/// process entry point, never from library code.
void install_stop_handlers();

/// True once a stop was requested (signal, request_stop(), or
/// note_signal_stop()).
bool stop_requested() noexcept;

/// Latches the stop flag WITHOUT counting a signal. Embedders that stop a
/// batch for their own reasons — the serve daemon's per-request deadline
/// watchdog, deterministic tests — use this so they can tell their own
/// stop apart from an operator's SIGINT/SIGTERM via stop_signals().
void request_stop() noexcept;

/// Exactly what the signal handler does: latches the flag AND counts a
/// signal. The deterministic hook for testing the drain path without
/// raising a real signal.
void note_signal_stop() noexcept;

/// Signals observed (SIGINT/SIGTERM deliveries plus note_signal_stop()
/// calls) since process start or the last clear_stop(). The serve daemon
/// drains and exits when this is non-zero, but resumes serving after a
/// stop it requested itself (a deadline) when it is still zero.
int stop_signals() noexcept;

/// Clears the flag and the signal count so a later batch can run (tests;
/// a fresh process starts clear).
void clear_stop() noexcept;

}  // namespace synran::exec
