// Cooperative, signal-safe stop flag for long batches.
//
// This is the repo's one point of contact with POSIX signals (lint rule
// `signals` bans signal handling everywhere else): entry points that run
// long sweeps — the CLI and the bench harness — call
// install_stop_handlers() once, and SIGINT/SIGTERM then latch a
// sig_atomic_t flag instead of killing the process. The executor polls
// stop_requested() between repetitions, finishes the reps already in
// flight, and throws Interrupted; callers catch it, flush checkpoints and
// partial artifacts, and exit with the distinct code 3 (see the exit-code
// table in README.md).
//
// The library never installs handlers on its own: embedders who want
// default signal semantics keep them, and tests drive the same code path
// deterministically through request_stop() / clear_stop().
#pragma once

#include <stdexcept>

namespace synran::exec {

/// A batch was stopped between repetitions after a stop request. The
/// message reports how many reps had completed. Statistics already folded
/// are discarded by the throw; completed *cells* survive in the checkpoint
/// ledger, which is the resume unit.
class Interrupted : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Routes SIGINT and SIGTERM to the stop flag. Idempotent; call from a
/// process entry point, never from library code.
void install_stop_handlers();

/// True once a stop was requested (signal or request_stop()).
bool stop_requested() noexcept;

/// Latches the stop flag exactly as a signal would (deterministic test and
/// embedder hook).
void request_stop() noexcept;

/// Clears the flag so a later batch can run (tests; a fresh process starts
/// clear).
void clear_stop() noexcept;

}  // namespace synran::exec
