#include "exec/async_executor.hpp"

#include <atomic>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "exec/stopper.hpp"
#include "obs/observer.hpp"
#include "obs/trace_record.hpp"

namespace synran::exec {

namespace {

/// The single definition of one async repetition; serial and parallel
/// batches both call it, which is what makes their results identical.
AsyncRunResult run_rep(const AsyncProcessFactory& factory,
                       const AsyncSchedulerFactory& schedulers,
                       const AsyncDelayFactory& delays,
                       const AsyncRepeatSpec& spec, std::size_t rep,
                       obs::EngineObserver* observer) {
  Xoshiro256 input_rng = input_rng_for_rep(spec.seed, rep);
  const std::vector<Bit> inputs =
      make_inputs(spec.n, spec.pattern, input_rng);
  auto scheduler = schedulers(adversary_seed_for_rep(spec.seed, rep));
  std::unique_ptr<DelayModel> delay;
  if (delays) delay = delays(delay_seed_for_rep(spec.seed, rep));
  AsyncEngineOptions opts = spec.engine;
  opts.seed = engine_seed_for_rep(spec.seed, rep);
  if (delay != nullptr) opts.delay = delay.get();
  opts.observer = observer;
  return run_async(factory, inputs, *scheduler, opts);
}

struct RepOutcome {
  bool ok = false;
  AsyncRunResult result;
  RepFailure failure;
  std::vector<obs::TraceRecord> records;
};

/// Runs repetition `rep` with its retry budget; every attempt re-derives
/// the identical per-rep streams, so a retry reproduces the one canonical
/// result or fails again. Abandoned attempts are reported to the observer
/// so traces stay well formed.
RepOutcome attempt_rep(const AsyncProcessFactory& factory,
                       const AsyncSchedulerFactory& schedulers,
                       const AsyncDelayFactory& delays,
                       const AsyncRepeatSpec& spec, std::size_t rep,
                       obs::EngineObserver* observer) {
  const std::uint32_t attempts_allowed = spec.max_rep_retries + 1;
  const std::uint64_t seed = engine_seed_for_rep(spec.seed, rep);
  RepOutcome out;
  std::string last_error;
  for (std::uint32_t attempt = 0; attempt < attempts_allowed; ++attempt) {
    try {
      out.result =
          run_rep(factory, schedulers, delays, spec, rep, observer);
      out.ok = true;
      return out;
    } catch (const std::exception& e) {
      last_error = e.what();
    } catch (...) {
      last_error = "unknown exception";
    }
    if (observer != nullptr) {
      observer->on_run_abandoned(
          obs::RunAbandoned{rep, seed, attempt, last_error});
    }
  }
  out.failure = RepFailure{rep, seed, attempts_allowed, last_error};
  return out;
}

[[noreturn]] void throw_interrupted(std::size_t completed, std::size_t reps) {
  throw Interrupted("stop requested: batch interrupted after " +
                    std::to_string(completed) + " of " + std::to_string(reps) +
                    " repetitions");
}

}  // namespace

AsyncRunStats AsyncBatchExecutor::run(const AsyncProcessFactory& factory,
                                      const AsyncSchedulerFactory& schedulers,
                                      const AsyncDelayFactory& delays,
                                      const AsyncRepeatSpec& spec) const {
  SYNRAN_REQUIRE(spec.reps >= 1, "need at least one repetition");
  SYNRAN_REQUIRE(static_cast<bool>(schedulers),
                 "need a scheduler factory");
  unsigned threads =
      resolve_threads(spec.threads != 0 ? spec.threads : options_.threads);
  if (threads > spec.reps) threads = static_cast<unsigned>(spec.reps);

  const bool quarantine = spec.policy == FailurePolicy::Quarantine;
  AsyncRunStats stats;

  if (threads == 1) {
    // Serial fast path: reps in order, observer callbacks fired live.
    for (std::size_t rep = 0; rep < spec.reps; ++rep) {
      if (stop_requested()) throw_interrupted(rep, spec.reps);
      RepOutcome out = attempt_rep(factory, schedulers, delays, spec, rep,
                                   spec.engine.observer);
      if (out.ok) {
        stats.add(out.result);
      } else if (quarantine) {
        stats.note_quarantined(std::move(out.failure));
      } else {
        throw RepError(rep, out.failure.seed, out.failure.error);
      }
    }
    return stats;
  }

  // Parallel path: workers fill disjoint slots; the only shared mutable
  // state is the fail-fast flag and the monotone stop flag.
  std::vector<RepOutcome> outcomes(spec.reps);
  std::vector<unsigned char> done(spec.reps, 0);
  std::atomic<bool> failed{false};

  const bool observed = spec.engine.observer != nullptr;

  auto worker = [&](unsigned w) {
    for (std::size_t rep = w; rep < spec.reps; rep += threads) {
      if (stop_requested()) return;
      if (!quarantine && failed.load(std::memory_order_relaxed)) return;
      if (observed) {
        // Buffer privately; the fold replays in rep order so the observer
        // sees the serial callback stream at any thread count.
        std::vector<obs::TraceRecord> records;
        obs::TraceRecorder recorder(records);
        RepOutcome out =
            attempt_rep(factory, schedulers, delays, spec, rep, &recorder);
        out.records = std::move(records);
        outcomes[rep] = std::move(out);
      } else {
        outcomes[rep] =
            attempt_rep(factory, schedulers, delays, spec, rep, nullptr);
      }
      done[rep] = 1;
      if (!outcomes[rep].ok && !quarantine) {
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned w = 0; w < threads; ++w) pool.emplace_back(worker, w);
  for (auto& t : pool) t.join();

  if (stop_requested()) {
    std::size_t completed = 0;
    for (const unsigned char d : done) completed += d;
    throw_interrupted(completed, spec.reps);
  }

  if (failed.load()) {
    // Deterministic error selection: the earliest failing rep wins.
    for (std::size_t rep = 0; rep < spec.reps; ++rep) {
      if (done[rep] != 0 && !outcomes[rep].ok) {
        throw RepError(rep, outcomes[rep].failure.seed,
                       outcomes[rep].failure.error);
      }
    }
    SYNRAN_CHECK_MSG(false, "fail-fast flag set without a recorded failure");
  }

  // Rep-order fold, replaying buffered callbacks first — the serial run's
  // exact observer stream and floating-point sequence.
  for (std::size_t rep = 0; rep < spec.reps; ++rep) {
    SYNRAN_CHECK_MSG(done[rep] != 0, "worker skipped a repetition");
    if (observed) obs::replay(outcomes[rep].records, *spec.engine.observer);
    if (outcomes[rep].ok) {
      stats.add(outcomes[rep].result);
    } else {
      stats.note_quarantined(std::move(outcomes[rep].failure));
    }
  }
  return stats;
}

}  // namespace synran::exec
