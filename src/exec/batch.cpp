#include "exec/batch.hpp"

#include <utility>

#include "common/check.hpp"
#include "obs/checkpoint.hpp"

namespace synran {

const char* to_string(InputPattern p) {
  switch (p) {
    case InputPattern::AllZero:
      return "all-0";
    case InputPattern::AllOne:
      return "all-1";
    case InputPattern::Half:
      return "half";
    case InputPattern::Random:
      return "random";
    case InputPattern::SingleZero:
      return "single-0";
  }
  return "?";
}

void make_inputs(std::vector<Bit>& out, std::uint32_t n, InputPattern pattern,
                 Xoshiro256& rng) {
  SYNRAN_REQUIRE(n >= 1, "need at least one process");
  out.assign(n, Bit::Zero);
  switch (pattern) {
    case InputPattern::AllZero:
      break;
    case InputPattern::AllOne:
      out.assign(n, Bit::One);
      break;
    case InputPattern::Half:
      for (std::uint32_t i = n / 2; i < n; ++i) out[i] = Bit::One;
      break;
    case InputPattern::Random:
      for (auto& b : out) b = bit_of(rng.flip());
      break;
    case InputPattern::SingleZero:
      out.assign(n, Bit::One);
      out[rng.below(n)] = Bit::Zero;
      break;
  }
}

std::vector<Bit> make_inputs(std::uint32_t n, InputPattern pattern,
                             Xoshiro256& rng) {
  std::vector<Bit> inputs;
  make_inputs(inputs, n, pattern, rng);
  return inputs;
}

Xoshiro256 input_rng_for_rep(std::uint64_t seed, std::size_t rep) {
  return Xoshiro256(SeedSequence(seed).stream(kInputStreamBase + rep));
}

std::uint64_t adversary_seed_for_rep(std::uint64_t seed, std::size_t rep) {
  return SeedSequence(seed).stream(kAdversaryStreamBase + rep);
}

std::uint64_t engine_seed_for_rep(std::uint64_t seed, std::size_t rep) {
  return SeedSequence(seed).stream(kEngineStreamBase + rep);
}

AdversaryFactory no_adversary_factory() {
  return [](std::uint64_t) { return std::make_unique<NoAdversary>(); };
}

const char* to_string(FailurePolicy policy) {
  switch (policy) {
    case FailurePolicy::FailFast:
      return "fail_fast";
    case FailurePolicy::Quarantine:
      return "quarantine";
  }
  return "?";
}

obs::JsonValue RepFailure::to_json() const {
  return obs::JsonValue::object()
      .set("rep", obs::JsonValue(std::uint64_t{rep}))
      .set("seed", obs::JsonValue(seed))
      .set("attempts", obs::JsonValue(attempts))
      .set("error", error);
}

namespace {
std::string rep_error_message(std::size_t rep, std::uint64_t seed,
                              const std::string& what) {
  return "rep " + std::to_string(rep) + " (engine seed " +
         std::to_string(seed) + ") failed: " + what;
}
}  // namespace

RepError::RepError(std::size_t rep, std::uint64_t seed,
                   const std::string& what)
    : std::runtime_error(rep_error_message(rep, seed, what)),
      rep_(rep),
      seed_(seed) {}

RepeatedRunStats::RepeatedRunStats() {
  // Pre-register everything the accessors expose so a zero-rep aggregate
  // still reads back as zeros instead of "unknown metric".
  metrics_.summary("rounds_to_decision");
  metrics_.summary("rounds_to_halt");
  metrics_.summary("crashes_used");
  metrics_.summary("messages_delivered");
  metrics_.summary("omissions_used");
  metrics_.summary("messages_omitted");
  metrics_.summary("corruptions_used");
  metrics_.summary("messages_corrupted");
  metrics_.counter("reps");
  metrics_.counter("agreement_failures");
  metrics_.counter("validity_failures");
  metrics_.counter("non_terminated");
  metrics_.counter("decided_one");
  metrics_.counter("reps_quarantined");
}

void RepeatedRunStats::note_quarantined(RepFailure failure) {
  metrics_.counter("reps_quarantined").inc();
  failures_.push_back(std::move(failure));
}

void RepeatedRunStats::add(const RunSummary& rep) {
  metrics_.counter("reps").inc();
  if (!rep.terminated) {
    metrics_.counter("non_terminated").inc();
  } else {
    metrics_.summary("rounds_to_decision")
        .add(static_cast<double>(rep.rounds_to_decision));
    metrics_.summary("rounds_to_halt")
        .add(static_cast<double>(rep.rounds_to_halt));
  }
  metrics_.summary("crashes_used").add(static_cast<double>(rep.crashes_total));
  metrics_.summary("messages_delivered")
      .add(static_cast<double>(rep.messages_delivered));
  metrics_.summary("omissions_used")
      .add(static_cast<double>(rep.omissions_total));
  metrics_.summary("messages_omitted")
      .add(static_cast<double>(rep.messages_omitted));
  metrics_.summary("corruptions_used")
      .add(static_cast<double>(rep.corruptions_total));
  metrics_.summary("messages_corrupted")
      .add(static_cast<double>(rep.messages_corrupted));
  if (rep.has_decision && !rep.agreement)
    metrics_.counter("agreement_failures").inc();
  if (!rep.validity) metrics_.counter("validity_failures").inc();
  if (rep.agreement && rep.decision == Bit::One)
    metrics_.counter("decided_one").inc();
}

const Summary& RepeatedRunStats::rounds_to_decision() const {
  return metrics_.summary_at("rounds_to_decision");
}
const Summary& RepeatedRunStats::rounds_to_halt() const {
  return metrics_.summary_at("rounds_to_halt");
}
const Summary& RepeatedRunStats::crashes_used() const {
  return metrics_.summary_at("crashes_used");
}
const Summary& RepeatedRunStats::messages_delivered() const {
  return metrics_.summary_at("messages_delivered");
}
const Summary& RepeatedRunStats::omissions_used() const {
  return metrics_.summary_at("omissions_used");
}
const Summary& RepeatedRunStats::messages_omitted() const {
  return metrics_.summary_at("messages_omitted");
}
const Summary& RepeatedRunStats::corruptions_used() const {
  return metrics_.summary_at("corruptions_used");
}
const Summary& RepeatedRunStats::messages_corrupted() const {
  return metrics_.summary_at("messages_corrupted");
}
std::size_t RepeatedRunStats::reps() const {
  return metrics_.counter_at("reps").value();
}
std::size_t RepeatedRunStats::agreement_failures() const {
  return metrics_.counter_at("agreement_failures").value();
}
std::size_t RepeatedRunStats::validity_failures() const {
  return metrics_.counter_at("validity_failures").value();
}
std::size_t RepeatedRunStats::non_terminated() const {
  return metrics_.counter_at("non_terminated").value();
}
std::size_t RepeatedRunStats::decided_one() const {
  return metrics_.counter_at("decided_one").value();
}
std::size_t RepeatedRunStats::reps_quarantined() const {
  return metrics_.counter_at("reps_quarantined").value();
}

obs::JsonValue RepeatedRunStats::checkpoint_json() const {
  obs::JsonValue failures = obs::JsonValue::array();
  for (const RepFailure& f : failures_) failures.push(f.to_json());
  return obs::JsonValue::object()
      .set("stats", obs::registry_snapshot(metrics_))
      .set("failures", std::move(failures));
}

RepeatedRunStats RepeatedRunStats::from_checkpoint(
    const obs::JsonValue& payload) {
  SYNRAN_REQUIRE(payload.is_object(),
                 "stats checkpoint payload must be an object");
  const obs::JsonValue* stats = payload.find("stats");
  const obs::JsonValue* failures = payload.find("failures");
  SYNRAN_REQUIRE(stats != nullptr && failures != nullptr &&
                     failures->is_array(),
                 "stats checkpoint payload needs 'stats' and 'failures'");

  RepeatedRunStats restored;
  restored.metrics_ = obs::registry_restore(*stats);
  // Every accessor the harnesses read must resolve; a snapshot that lost a
  // pre-registered metric is a foreign or corrupt payload.
  for (const char* name :
       {"rounds_to_decision", "rounds_to_halt", "crashes_used",
        "messages_delivered", "omissions_used", "messages_omitted",
        "corruptions_used", "messages_corrupted"}) {
    SYNRAN_REQUIRE(restored.metrics_.has_summary(name),
                   std::string("stats checkpoint missing summary: ") + name);
  }
  for (const char* name :
       {"reps", "agreement_failures", "validity_failures", "non_terminated",
        "decided_one", "reps_quarantined"}) {
    SYNRAN_REQUIRE(restored.metrics_.has_counter(name),
                   std::string("stats checkpoint missing counter: ") + name);
  }

  for (const obs::JsonValue& entry : failures->as_array()) {
    const obs::JsonValue* rep = entry.find("rep");
    const obs::JsonValue* seed = entry.find("seed");
    const obs::JsonValue* attempts = entry.find("attempts");
    const obs::JsonValue* error = entry.find("error");
    SYNRAN_REQUIRE(rep != nullptr && rep->is_int() && rep->as_int() >= 0 &&
                       seed != nullptr && seed->is_int() &&
                       attempts != nullptr && attempts->is_int() &&
                       attempts->as_int() >= 1 && error != nullptr &&
                       error->is_string(),
                   "stats checkpoint failure entry malformed");
    restored.failures_.push_back(RepFailure{
        static_cast<std::size_t>(rep->as_int()),
        static_cast<std::uint64_t>(seed->as_int()),
        static_cast<std::uint32_t>(attempts->as_int()), error->as_string()});
  }
  SYNRAN_REQUIRE(restored.failures_.size() == restored.reps_quarantined(),
                 "stats checkpoint failure list disagrees with counter");
  return restored;
}

std::string spec_cell_key(const RepeatSpec& spec, std::string_view protocol,
                          std::string_view tag) {
  std::string key;
  key += "proto=";
  key += protocol;
  key += ";tag=";
  key += tag;
  key += ";n=" + std::to_string(spec.n);
  key += ";pattern=";
  key += to_string(spec.pattern);
  key += ";reps=" + std::to_string(spec.reps);
  key += ";seed=" + std::to_string(spec.seed);
  key += ";t=" + std::to_string(spec.engine.t_budget);
  key += ";cap=" + std::to_string(spec.engine.per_round_cap);
  key += ";omb=" + std::to_string(spec.engine.omission_budget);
  key += ";omc=" + std::to_string(spec.engine.omission_round_cap);
  key += ";byz=" + std::to_string(spec.engine.byzantine_budget);
  key += ";bzc=" + std::to_string(spec.engine.byzantine_round_cap);
  key += ";max_rounds=" + std::to_string(spec.engine.max_rounds);
  key += ";strict=" + std::to_string(spec.engine.strict_decision_audit ? 1 : 0);
  key += ";policy=";
  key += to_string(spec.policy);
  key += ";retries=" + std::to_string(spec.engine.max_rep_retries);
  key += ";seed_schema=" + std::to_string(kSeedSchemaVersion);
  return key;
}

}  // namespace synran
