#include "exec/batch.hpp"

#include "common/check.hpp"

namespace synran {

const char* to_string(InputPattern p) {
  switch (p) {
    case InputPattern::AllZero:
      return "all-0";
    case InputPattern::AllOne:
      return "all-1";
    case InputPattern::Half:
      return "half";
    case InputPattern::Random:
      return "random";
    case InputPattern::SingleZero:
      return "single-0";
  }
  return "?";
}

void make_inputs(std::vector<Bit>& out, std::uint32_t n, InputPattern pattern,
                 Xoshiro256& rng) {
  SYNRAN_REQUIRE(n >= 1, "need at least one process");
  out.assign(n, Bit::Zero);
  switch (pattern) {
    case InputPattern::AllZero:
      break;
    case InputPattern::AllOne:
      out.assign(n, Bit::One);
      break;
    case InputPattern::Half:
      for (std::uint32_t i = n / 2; i < n; ++i) out[i] = Bit::One;
      break;
    case InputPattern::Random:
      for (auto& b : out) b = bit_of(rng.flip());
      break;
    case InputPattern::SingleZero:
      out.assign(n, Bit::One);
      out[rng.below(n)] = Bit::Zero;
      break;
  }
}

std::vector<Bit> make_inputs(std::uint32_t n, InputPattern pattern,
                             Xoshiro256& rng) {
  std::vector<Bit> inputs;
  make_inputs(inputs, n, pattern, rng);
  return inputs;
}

Xoshiro256 input_rng_for_rep(std::uint64_t seed, std::size_t rep) {
  return Xoshiro256(SeedSequence(seed).stream(kInputStreamBase + rep));
}

std::uint64_t adversary_seed_for_rep(std::uint64_t seed, std::size_t rep) {
  return SeedSequence(seed).stream(kAdversaryStreamBase + rep);
}

std::uint64_t engine_seed_for_rep(std::uint64_t seed, std::size_t rep) {
  return SeedSequence(seed).stream(kEngineStreamBase + rep);
}

AdversaryFactory no_adversary_factory() {
  return [](std::uint64_t) { return std::make_unique<NoAdversary>(); };
}

RepeatedRunStats::RepeatedRunStats() {
  // Pre-register everything the accessors expose so a zero-rep aggregate
  // still reads back as zeros instead of "unknown metric".
  metrics_.summary("rounds_to_decision");
  metrics_.summary("rounds_to_halt");
  metrics_.summary("crashes_used");
  metrics_.summary("messages_delivered");
  metrics_.summary("omissions_used");
  metrics_.summary("messages_omitted");
  metrics_.counter("reps");
  metrics_.counter("agreement_failures");
  metrics_.counter("validity_failures");
  metrics_.counter("non_terminated");
  metrics_.counter("decided_one");
}

void RepeatedRunStats::add(const RunSummary& rep) {
  metrics_.counter("reps").inc();
  if (!rep.terminated) {
    metrics_.counter("non_terminated").inc();
  } else {
    metrics_.summary("rounds_to_decision")
        .add(static_cast<double>(rep.rounds_to_decision));
    metrics_.summary("rounds_to_halt")
        .add(static_cast<double>(rep.rounds_to_halt));
  }
  metrics_.summary("crashes_used").add(static_cast<double>(rep.crashes_total));
  metrics_.summary("messages_delivered")
      .add(static_cast<double>(rep.messages_delivered));
  metrics_.summary("omissions_used")
      .add(static_cast<double>(rep.omissions_total));
  metrics_.summary("messages_omitted")
      .add(static_cast<double>(rep.messages_omitted));
  if (rep.has_decision && !rep.agreement)
    metrics_.counter("agreement_failures").inc();
  if (!rep.validity) metrics_.counter("validity_failures").inc();
  if (rep.agreement && rep.decision == Bit::One)
    metrics_.counter("decided_one").inc();
}

const Summary& RepeatedRunStats::rounds_to_decision() const {
  return metrics_.summary_at("rounds_to_decision");
}
const Summary& RepeatedRunStats::rounds_to_halt() const {
  return metrics_.summary_at("rounds_to_halt");
}
const Summary& RepeatedRunStats::crashes_used() const {
  return metrics_.summary_at("crashes_used");
}
const Summary& RepeatedRunStats::messages_delivered() const {
  return metrics_.summary_at("messages_delivered");
}
const Summary& RepeatedRunStats::omissions_used() const {
  return metrics_.summary_at("omissions_used");
}
const Summary& RepeatedRunStats::messages_omitted() const {
  return metrics_.summary_at("messages_omitted");
}
std::size_t RepeatedRunStats::reps() const {
  return metrics_.counter_at("reps").value();
}
std::size_t RepeatedRunStats::agreement_failures() const {
  return metrics_.counter_at("agreement_failures").value();
}
std::size_t RepeatedRunStats::validity_failures() const {
  return metrics_.counter_at("validity_failures").value();
}
std::size_t RepeatedRunStats::non_terminated() const {
  return metrics_.counter_at("non_terminated").value();
}
std::size_t RepeatedRunStats::decided_one() const {
  return metrics_.counter_at("decided_one").value();
}

}  // namespace synran
