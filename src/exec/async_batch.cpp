#include "exec/async_batch.hpp"

#include <string>
#include <utility>

#include "common/check.hpp"
#include "obs/checkpoint.hpp"

namespace synran {

std::uint64_t delay_seed_for_rep(std::uint64_t seed, std::size_t rep) {
  return SeedSequence(seed).stream(kAsyncDelayStreamBase + rep);
}

AsyncSchedulerFactory fifo_scheduler_factory() {
  return [](std::uint64_t) { return std::make_unique<FifoScheduler>(); };
}

AsyncSchedulerFactory random_scheduler_factory() {
  return [](std::uint64_t seed) {
    return std::make_unique<RandomScheduler>(seed);
  };
}

AsyncSchedulerFactory laggard_scheduler_factory() {
  return [](std::uint64_t seed) {
    return std::make_unique<LaggardScheduler>(seed);
  };
}

AsyncSchedulerFactory stall_scheduler_factory() {
  return [](std::uint64_t) { return std::make_unique<StallScheduler>(); };
}

AsyncDelayFactory held_delay_factory() {
  return [](std::uint64_t) { return std::unique_ptr<DelayModel>(); };
}

AsyncDelayFactory fixed_delay_factory(SimTime latency) {
  return [latency](std::uint64_t) {
    return std::make_unique<FixedDelay>(latency);
  };
}

AsyncDelayFactory uniform_delay_factory(SimTime lo, SimTime hi) {
  return [lo, hi](std::uint64_t seed) {
    return std::make_unique<UniformDelay>(lo, hi, seed);
  };
}

AsyncDelayFactory gst_delay_factory(SimTime gst, SimTime bound) {
  return [gst, bound](std::uint64_t) {
    return std::make_unique<GstDelay>(gst, bound);
  };
}

AsyncRunStats::AsyncRunStats() {
  // Pre-register so a zero-rep aggregate reads back as zeros.
  metrics_.summary("rounds_to_decision");
  metrics_.summary("ticks_to_decision");
  metrics_.summary("crashes_used");
  metrics_.summary("messages_delivered");
  metrics_.summary("coin_flips");
  metrics_.summary("timers_fired");
  metrics_.summary("omissions_used");
  metrics_.summary("messages_omitted");
  metrics_.counter("reps");
  metrics_.counter("agreement_failures");
  metrics_.counter("validity_failures");
  metrics_.counter("non_terminated");
  metrics_.counter("decided_one");
  metrics_.counter("reps_quarantined");
}

void AsyncRunStats::add(const AsyncRunResult& rep) {
  metrics_.counter("reps").inc();
  if (!rep.terminated) {
    metrics_.counter("non_terminated").inc();
  } else {
    metrics_.summary("rounds_to_decision")
        .add(static_cast<double>(rep.max_round));
    metrics_.summary("ticks_to_decision")
        .add(static_cast<double>(rep.decision_time));
  }
  metrics_.summary("crashes_used").add(static_cast<double>(rep.crashes));
  metrics_.summary("messages_delivered")
      .add(static_cast<double>(rep.messages_delivered));
  metrics_.summary("coin_flips").add(static_cast<double>(rep.coin_flips));
  metrics_.summary("timers_fired")
      .add(static_cast<double>(rep.timers_fired));
  metrics_.summary("omissions_used").add(static_cast<double>(rep.omissions));
  metrics_.summary("messages_omitted")
      .add(static_cast<double>(rep.messages_omitted));
  if (rep.decided_live > 0 && !rep.agreement)
    metrics_.counter("agreement_failures").inc();
  if (!rep.validity) metrics_.counter("validity_failures").inc();
  if (rep.agreement && rep.decision == Bit::One)
    metrics_.counter("decided_one").inc();
}

void AsyncRunStats::note_quarantined(RepFailure failure) {
  metrics_.counter("reps_quarantined").inc();
  failures_.push_back(std::move(failure));
}

const Summary& AsyncRunStats::rounds_to_decision() const {
  return metrics_.summary_at("rounds_to_decision");
}
const Summary& AsyncRunStats::ticks_to_decision() const {
  return metrics_.summary_at("ticks_to_decision");
}
const Summary& AsyncRunStats::crashes_used() const {
  return metrics_.summary_at("crashes_used");
}
const Summary& AsyncRunStats::messages_delivered() const {
  return metrics_.summary_at("messages_delivered");
}
const Summary& AsyncRunStats::coin_flips() const {
  return metrics_.summary_at("coin_flips");
}
const Summary& AsyncRunStats::timers_fired() const {
  return metrics_.summary_at("timers_fired");
}
const Summary& AsyncRunStats::omissions_used() const {
  return metrics_.summary_at("omissions_used");
}
const Summary& AsyncRunStats::messages_omitted() const {
  return metrics_.summary_at("messages_omitted");
}
std::size_t AsyncRunStats::reps() const {
  return metrics_.counter_at("reps").value();
}
std::size_t AsyncRunStats::agreement_failures() const {
  return metrics_.counter_at("agreement_failures").value();
}
std::size_t AsyncRunStats::validity_failures() const {
  return metrics_.counter_at("validity_failures").value();
}
std::size_t AsyncRunStats::non_terminated() const {
  return metrics_.counter_at("non_terminated").value();
}
std::size_t AsyncRunStats::decided_one() const {
  return metrics_.counter_at("decided_one").value();
}
std::size_t AsyncRunStats::reps_quarantined() const {
  return metrics_.counter_at("reps_quarantined").value();
}

obs::JsonValue AsyncRunStats::checkpoint_json() const {
  obs::JsonValue failures = obs::JsonValue::array();
  for (const RepFailure& f : failures_) failures.push(f.to_json());
  return obs::JsonValue::object()
      .set("stats", obs::registry_snapshot(metrics_))
      .set("failures", std::move(failures));
}

AsyncRunStats AsyncRunStats::from_checkpoint(const obs::JsonValue& payload) {
  SYNRAN_REQUIRE(payload.is_object(),
                 "async stats checkpoint payload must be an object");
  const obs::JsonValue* stats = payload.find("stats");
  const obs::JsonValue* failures = payload.find("failures");
  SYNRAN_REQUIRE(stats != nullptr && failures != nullptr &&
                     failures->is_array(),
                 "async stats checkpoint payload needs 'stats' and "
                 "'failures'");

  AsyncRunStats restored;
  restored.metrics_ = obs::registry_restore(*stats);
  // Every accessor the harnesses read must resolve; a snapshot that lost a
  // pre-registered metric is a foreign or corrupt payload (e.g. a sync
  // cell's snapshot served to an async sweep).
  for (const char* name :
       {"rounds_to_decision", "ticks_to_decision", "crashes_used",
        "messages_delivered", "coin_flips", "timers_fired", "omissions_used",
        "messages_omitted"}) {
    SYNRAN_REQUIRE(
        restored.metrics_.has_summary(name),
        std::string("async stats checkpoint missing summary: ") + name);
  }
  for (const char* name :
       {"reps", "agreement_failures", "validity_failures", "non_terminated",
        "decided_one", "reps_quarantined"}) {
    SYNRAN_REQUIRE(
        restored.metrics_.has_counter(name),
        std::string("async stats checkpoint missing counter: ") + name);
  }

  for (const obs::JsonValue& entry : failures->as_array()) {
    const obs::JsonValue* rep = entry.find("rep");
    const obs::JsonValue* seed = entry.find("seed");
    const obs::JsonValue* attempts = entry.find("attempts");
    const obs::JsonValue* error = entry.find("error");
    SYNRAN_REQUIRE(rep != nullptr && rep->is_int() && rep->as_int() >= 0 &&
                       seed != nullptr && seed->is_int() &&
                       attempts != nullptr && attempts->is_int() &&
                       attempts->as_int() >= 1 && error != nullptr &&
                       error->is_string(),
                   "async stats checkpoint failure entry malformed");
    restored.failures_.push_back(RepFailure{
        static_cast<std::size_t>(rep->as_int()),
        static_cast<std::uint64_t>(seed->as_int()),
        static_cast<std::uint32_t>(attempts->as_int()), error->as_string()});
  }
  SYNRAN_REQUIRE(restored.failures_.size() == restored.reps_quarantined(),
                 "async stats checkpoint failure list disagrees with counter");
  return restored;
}

std::string async_spec_cell_key(const AsyncRepeatSpec& spec,
                                std::string_view protocol,
                                std::string_view tag) {
  std::string key;
  key += "model=async;proto=";
  key += protocol;
  key += ";tag=";
  key += tag;
  key += ";n=" + std::to_string(spec.n);
  key += ";pattern=";
  key += to_string(spec.pattern);
  key += ";reps=" + std::to_string(spec.reps);
  key += ";seed=" + std::to_string(spec.seed);
  key += ";t=" + std::to_string(spec.engine.t_budget);
  key += ";steps=" + std::to_string(spec.engine.max_steps);
  key += ";time=" + std::to_string(spec.engine.max_time);
  key += ";events=" + std::to_string(spec.engine.max_events);
  key += ";omb=" + std::to_string(spec.engine.omission_budget);
  key += ";policy=";
  key += to_string(spec.policy);
  key += ";retries=" + std::to_string(spec.max_rep_retries);
  key += ";seed_schema=" + std::to_string(kSeedSchemaVersion);
  return key;
}

}  // namespace synran
