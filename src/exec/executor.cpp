#include "exec/executor.hpp"

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "exec/stopper.hpp"
#include "obs/observer.hpp"

namespace synran::exec {

namespace {

/// Runs one repetition into `ws`/`engine` and returns its summary. This is
/// the single definition of what a repetition *is*; serial and parallel
/// batches both call it, which is what makes their results identical.
RunSummary run_rep(const ProcessFactory& factory,
                   const AdversaryFactory& adversaries, const RepeatSpec& spec,
                   std::size_t rep, Engine& engine, EngineWorkspace& ws) {
  Xoshiro256 input_rng = input_rng_for_rep(spec.seed, rep);
  make_inputs(ws.inputs(), spec.n, spec.pattern, input_rng);
  auto adversary = adversaries(adversary_seed_for_rep(spec.seed, rep));
  EngineOptions opts = spec.engine;
  opts.seed = engine_seed_for_rep(spec.seed, rep);
  return engine.run(factory, ws.inputs(), *adversary, opts);
}

/// One repetition's terminal state: its canonical summary, or the failure
/// that exhausted the retry budget.
struct RepOutcome {
  bool ok = false;
  RunSummary summary;
  RepFailure failure;
};

/// Runs repetition `rep` with its retry budget. Every attempt re-derives
/// the identical per-rep streams (schema 2 makes them pure functions of the
/// master seed and rep index), so a retry either reproduces the one
/// canonical RunSummary or fails again — determinism is preserved either
/// way. Abandoned attempts are reported to the observer (serial-only, like
/// all observers) so traces stay well formed.
RepOutcome attempt_rep(const ProcessFactory& factory,
                       const AdversaryFactory& adversaries,
                       const RepeatSpec& spec, std::size_t rep, Engine& engine,
                       EngineWorkspace& ws) {
  const std::uint32_t attempts_allowed = spec.engine.max_rep_retries + 1;
  const std::uint64_t seed = engine_seed_for_rep(spec.seed, rep);
  RepOutcome out;
  std::string last_error;
  for (std::uint32_t attempt = 0; attempt < attempts_allowed; ++attempt) {
    try {
      out.summary = run_rep(factory, adversaries, spec, rep, engine, ws);
      out.ok = true;
      return out;
    } catch (const std::exception& e) {
      last_error = e.what();
    } catch (...) {
      last_error = "unknown exception";
    }
    if (spec.engine.observer != nullptr) {
      spec.engine.observer->on_run_abandoned(
          obs::RunAbandoned{rep, seed, attempt, last_error});
    }
  }
  out.failure = RepFailure{rep, seed, attempts_allowed, last_error};
  return out;
}

[[noreturn]] void throw_interrupted(std::size_t completed, std::size_t reps) {
  throw Interrupted("stop requested: batch interrupted after " +
                    std::to_string(completed) + " of " + std::to_string(reps) +
                    " repetitions");
}

}  // namespace

unsigned resolve_threads(unsigned requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("SYNRAN_THREADS");
      env != nullptr && *env != '\0') {
    const unsigned long n = std::strtoul(env, nullptr, 10);
    return n >= 1 ? static_cast<unsigned>(n) : 1u;
  }
  return 1;
}

RepeatedRunStats BatchExecutor::run(const ProcessFactory& factory,
                                    const AdversaryFactory& adversaries,
                                    const RepeatSpec& spec) const {
  SYNRAN_REQUIRE(spec.reps >= 1, "need at least one repetition");
  unsigned threads =
      resolve_threads(spec.threads != 0 ? spec.threads : options_.threads);
  if (threads > spec.reps) threads = static_cast<unsigned>(spec.reps);
  SYNRAN_REQUIRE(spec.engine.observer == nullptr || threads == 1,
                 "engine observers are serial-only: round callbacks from "
                 "concurrent reps would interleave nondeterministically — "
                 "run observed batches at 1 thread");

  const bool quarantine = spec.policy == FailurePolicy::Quarantine;
  RepeatedRunStats stats;

  if (threads == 1) {
    // Serial fast path on the calling thread: one workspace, reps in order.
    EngineWorkspace ws;
    Engine engine(ws);
    for (std::size_t rep = 0; rep < spec.reps; ++rep) {
      if (stop_requested()) throw_interrupted(rep, spec.reps);
      RepOutcome out = attempt_rep(factory, adversaries, spec, rep, engine, ws);
      if (out.ok) {
        stats.add(out.summary);
      } else if (quarantine) {
        stats.note_quarantined(std::move(out.failure));
      } else {
        throw RepError(rep, out.failure.seed, out.failure.error);
      }
    }
    return stats;
  }

  // Parallel path. Workers fill disjoint slots of `outcomes`; the only
  // shared mutable state is the fail-fast flag below and the (monotonic)
  // stop flag. A stop request lets every worker finish its in-flight rep,
  // then the batch throws after the join.
  std::vector<RepOutcome> outcomes(spec.reps);
  std::vector<unsigned char> done(spec.reps, 0);
  std::atomic<bool> failed{false};

  auto worker = [&](unsigned w) {
    EngineWorkspace ws;
    Engine engine(ws);
    for (std::size_t rep = w; rep < spec.reps; rep += threads) {
      if (stop_requested()) return;
      if (!quarantine && failed.load(std::memory_order_relaxed)) return;
      outcomes[rep] = attempt_rep(factory, adversaries, spec, rep, engine, ws);
      done[rep] = 1;
      if (!outcomes[rep].ok && !quarantine) {
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned w = 0; w < threads; ++w) pool.emplace_back(worker, w);
  for (auto& t : pool) t.join();

  if (stop_requested()) {
    std::size_t completed = 0;
    for (const unsigned char d : done) completed += d;
    throw_interrupted(completed, spec.reps);
  }

  if (failed.load()) {
    // Deterministic error selection: report the earliest failing rep,
    // regardless of which worker hit its error first in wall time.
    for (std::size_t rep = 0; rep < spec.reps; ++rep) {
      if (done[rep] != 0 && !outcomes[rep].ok) {
        throw RepError(rep, outcomes[rep].failure.seed,
                       outcomes[rep].failure.error);
      }
    }
    SYNRAN_CHECK_MSG(false, "fail-fast flag set without a recorded failure");
  }

  // Fold in rep order — the serial run's exact floating-point sequence.
  for (std::size_t rep = 0; rep < spec.reps; ++rep) {
    SYNRAN_CHECK_MSG(done[rep] != 0, "worker skipped a repetition");
    if (outcomes[rep].ok) {
      stats.add(outcomes[rep].summary);
    } else {
      stats.note_quarantined(std::move(outcomes[rep].failure));
    }
  }
  return stats;
}

}  // namespace synran::exec
