#include "exec/executor.hpp"

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "exec/stopper.hpp"
#include "obs/observer.hpp"
#include "obs/trace_record.hpp"

namespace synran::exec {

namespace {

/// Runs one repetition into `ws`/`engine` and returns its summary. This is
/// the single definition of what a repetition *is*; serial and parallel
/// batches both call it, which is what makes their results identical.
RunSummary run_rep(const ProcessFactory& factory,
                   const AdversaryFactory& adversaries, const RepeatSpec& spec,
                   std::size_t rep, Engine& engine, EngineWorkspace& ws,
                   obs::EngineObserver* observer) {
  Xoshiro256 input_rng = input_rng_for_rep(spec.seed, rep);
  make_inputs(ws.inputs(), spec.n, spec.pattern, input_rng);
  auto adversary = adversaries(adversary_seed_for_rep(spec.seed, rep));
  EngineOptions opts = spec.engine;
  opts.seed = engine_seed_for_rep(spec.seed, rep);
  opts.observer = observer;
  return engine.run(factory, ws.inputs(), *adversary, opts);
}

/// One repetition's terminal state: its canonical summary, or the failure
/// that exhausted the retry budget — plus, for observed parallel batches,
/// the rep's buffered callback stream awaiting its rep-order replay.
struct RepOutcome {
  bool ok = false;
  RunSummary summary;
  RepFailure failure;
  std::vector<obs::TraceRecord> records;
};

/// Runs repetition `rep` with its retry budget. Every attempt re-derives
/// the identical per-rep streams (schema 2 makes them pure functions of the
/// master seed and rep index), so a retry either reproduces the one
/// canonical RunSummary or fails again — determinism is preserved either
/// way. `observer` is the rep's callback sink (the configured observer when
/// serial, a per-rep recorder when parallel); abandoned attempts are
/// reported to it so traces stay well formed.
RepOutcome attempt_rep(const ProcessFactory& factory,
                       const AdversaryFactory& adversaries,
                       const RepeatSpec& spec, std::size_t rep, Engine& engine,
                       EngineWorkspace& ws, obs::EngineObserver* observer) {
  const std::uint32_t attempts_allowed = spec.engine.max_rep_retries + 1;
  const std::uint64_t seed = engine_seed_for_rep(spec.seed, rep);
  RepOutcome out;
  std::string last_error;
  for (std::uint32_t attempt = 0; attempt < attempts_allowed; ++attempt) {
    try {
      out.summary =
          run_rep(factory, adversaries, spec, rep, engine, ws, observer);
      out.ok = true;
      return out;
    } catch (const std::exception& e) {
      last_error = e.what();
    } catch (...) {
      last_error = "unknown exception";
    }
    if (observer != nullptr) {
      observer->on_run_abandoned(
          obs::RunAbandoned{rep, seed, attempt, last_error});
    }
  }
  out.failure = RepFailure{rep, seed, attempts_allowed, last_error};
  return out;
}

[[noreturn]] void throw_interrupted(std::size_t completed, std::size_t reps) {
  throw Interrupted("stop requested: batch interrupted after " +
                    std::to_string(completed) + " of " + std::to_string(reps) +
                    " repetitions");
}

}  // namespace

unsigned resolve_threads(unsigned requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("SYNRAN_THREADS");
      env != nullptr && *env != '\0') {
    const unsigned long n = std::strtoul(env, nullptr, 10);
    return n >= 1 ? static_cast<unsigned>(n) : 1u;
  }
  return 1;
}

RepeatedRunStats BatchExecutor::run(const ProcessFactory& factory,
                                    const AdversaryFactory& adversaries,
                                    const RepeatSpec& spec) const {
  SYNRAN_REQUIRE(spec.reps >= 1, "need at least one repetition");
  unsigned threads =
      resolve_threads(spec.threads != 0 ? spec.threads : options_.threads);
  if (threads > spec.reps) threads = static_cast<unsigned>(spec.reps);

  const bool quarantine = spec.policy == FailurePolicy::Quarantine;
  RepeatedRunStats stats;

  if (threads == 1) {
    // Serial fast path on the calling thread: one workspace, reps in order,
    // observer callbacks fired live.
    EngineWorkspace ws;
    Engine engine(ws);
    for (std::size_t rep = 0; rep < spec.reps; ++rep) {
      if (stop_requested()) throw_interrupted(rep, spec.reps);
      RepOutcome out = attempt_rep(factory, adversaries, spec, rep, engine, ws,
                                   spec.engine.observer);
      if (out.ok) {
        stats.add(out.summary);
      } else if (quarantine) {
        stats.note_quarantined(std::move(out.failure));
      } else {
        throw RepError(rep, out.failure.seed, out.failure.error);
      }
    }
    return stats;
  }

  // Parallel path. Workers fill disjoint slots of `outcomes`; the only
  // shared mutable state is the fail-fast flag below and the (monotonic)
  // stop flag. A stop request lets every worker finish its in-flight rep,
  // then the batch throws after the join.
  std::vector<RepOutcome> outcomes(spec.reps);
  std::vector<unsigned char> done(spec.reps, 0);
  std::atomic<bool> failed{false};

  const bool observed = spec.engine.observer != nullptr;

  auto worker = [&](unsigned w) {
    EngineWorkspace ws;
    Engine engine(ws);
    for (std::size_t rep = w; rep < spec.reps; rep += threads) {
      if (stop_requested()) return;
      if (!quarantine && failed.load(std::memory_order_relaxed)) return;
      if (observed) {
        // Buffer the rep's callback stream privately; the fold below
        // replays the buffers into the real observer in rep order, so the
        // observer sees the serial stream regardless of scheduling.
        std::vector<obs::TraceRecord> records;
        obs::TraceRecorder recorder(records);
        RepOutcome out = attempt_rep(factory, adversaries, spec, rep, engine,
                                     ws, &recorder);
        out.records = std::move(records);
        outcomes[rep] = std::move(out);
      } else {
        outcomes[rep] =
            attempt_rep(factory, adversaries, spec, rep, engine, ws, nullptr);
      }
      done[rep] = 1;
      if (!outcomes[rep].ok && !quarantine) {
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned w = 0; w < threads; ++w) pool.emplace_back(worker, w);
  for (auto& t : pool) t.join();

  if (stop_requested()) {
    std::size_t completed = 0;
    for (const unsigned char d : done) completed += d;
    throw_interrupted(completed, spec.reps);
  }

  if (failed.load()) {
    // Deterministic error selection: report the earliest failing rep,
    // regardless of which worker hit its error first in wall time.
    for (std::size_t rep = 0; rep < spec.reps; ++rep) {
      if (done[rep] != 0 && !outcomes[rep].ok) {
        throw RepError(rep, outcomes[rep].failure.seed,
                       outcomes[rep].failure.error);
      }
    }
    SYNRAN_CHECK_MSG(false, "fail-fast flag set without a recorded failure");
  }

  // Fold in rep order — the serial run's exact floating-point sequence —
  // replaying each rep's buffered callbacks first, so an observer's event
  // stream interleaves with the fold exactly as a serial run's would.
  for (std::size_t rep = 0; rep < spec.reps; ++rep) {
    SYNRAN_CHECK_MSG(done[rep] != 0, "worker skipped a repetition");
    if (observed) obs::replay(outcomes[rep].records, *spec.engine.observer);
    if (outcomes[rep].ok) {
      stats.add(outcomes[rep].summary);
    } else {
      stats.note_quarantined(std::move(outcomes[rep].failure));
    }
  }
  return stats;
}

}  // namespace synran::exec
