#include "exec/executor.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.hpp"

namespace synran::exec {

namespace {

/// Runs one repetition into `ws`/`engine` and returns its summary. This is
/// the single definition of what a repetition *is*; serial and parallel
/// batches both call it, which is what makes their results identical.
RunSummary run_rep(const ProcessFactory& factory,
                   const AdversaryFactory& adversaries, const RepeatSpec& spec,
                   std::size_t rep, Engine& engine, EngineWorkspace& ws) {
  Xoshiro256 input_rng = input_rng_for_rep(spec.seed, rep);
  make_inputs(ws.inputs(), spec.n, spec.pattern, input_rng);
  auto adversary = adversaries(adversary_seed_for_rep(spec.seed, rep));
  EngineOptions opts = spec.engine;
  opts.seed = engine_seed_for_rep(spec.seed, rep);
  return engine.run(factory, ws.inputs(), *adversary, opts);
}

}  // namespace

unsigned resolve_threads(unsigned requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("SYNRAN_THREADS");
      env != nullptr && *env != '\0') {
    const unsigned long n = std::strtoul(env, nullptr, 10);
    return n >= 1 ? static_cast<unsigned>(n) : 1u;
  }
  return 1;
}

RepeatedRunStats BatchExecutor::run(const ProcessFactory& factory,
                                    const AdversaryFactory& adversaries,
                                    const RepeatSpec& spec) const {
  SYNRAN_REQUIRE(spec.reps >= 1, "need at least one repetition");
  unsigned threads =
      resolve_threads(spec.threads != 0 ? spec.threads : options_.threads);
  if (threads > spec.reps) threads = static_cast<unsigned>(spec.reps);
  SYNRAN_REQUIRE(spec.engine.observer == nullptr || threads == 1,
                 "engine observers are serial-only: round callbacks from "
                 "concurrent reps would interleave nondeterministically — "
                 "run observed batches at 1 thread");

  RepeatedRunStats stats;

  if (threads == 1) {
    // Serial fast path on the calling thread: one workspace, reps in order.
    EngineWorkspace ws;
    Engine engine(ws);
    for (std::size_t rep = 0; rep < spec.reps; ++rep)
      stats.add(run_rep(factory, adversaries, spec, rep, engine, ws));
    return stats;
  }

  // Parallel path. Workers fill disjoint slots of `summaries`; the only
  // shared mutable state is the first-failure slot below.
  std::vector<RunSummary> summaries(spec.reps);
  std::atomic<bool> failed{false};
  std::vector<std::exception_ptr> errors(threads);
  std::vector<std::size_t> error_reps(threads, spec.reps);

  auto worker = [&](unsigned w) {
    EngineWorkspace ws;
    Engine engine(ws);
    for (std::size_t rep = w; rep < spec.reps; rep += threads) {
      if (failed.load(std::memory_order_relaxed)) return;
      try {
        summaries[rep] = run_rep(factory, adversaries, spec, rep, engine, ws);
      } catch (...) {
        errors[w] = std::current_exception();
        error_reps[w] = rep;
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned w = 0; w < threads; ++w) pool.emplace_back(worker, w);
  for (auto& t : pool) t.join();

  if (failed.load()) {
    // Deterministic error selection: rethrow the failure of the earliest
    // rep, regardless of which worker hit its error first in wall time.
    unsigned first = 0;
    for (unsigned w = 1; w < threads; ++w)
      if (error_reps[w] < error_reps[first]) first = w;
    std::rethrow_exception(errors[first]);
  }

  // Fold in rep order — the serial run's exact floating-point sequence.
  for (std::size_t rep = 0; rep < spec.reps; ++rep) stats.add(summaries[rep]);
  return stats;
}

}  // namespace synran::exec
