#include "exec/stopper.hpp"

#include <csignal>

namespace synran::exec {

namespace {

// volatile sig_atomic_t is the only type the C++ standard guarantees a
// signal handler may write. Worker threads poll it between reps; the read
// is a data race in the strict memory-model sense when a real signal
// lands mid-batch, but every platform this repo targets makes aligned
// sig_atomic_t loads/stores indivisible, and the flag is monotonic
// (0 -> 1), so the worst case is one extra rep before the stop is seen.
volatile std::sig_atomic_t g_stop = 0;
// Signals seen since the last clear. A plain increment is fine: the
// handler is the only writer from signal context, polls only read, and
// the serve drain logic needs "zero vs non-zero", not an exact count.
volatile std::sig_atomic_t g_signals = 0;

void on_stop_signal(int /*signum*/) {
  g_signals = g_signals + 1;
  g_stop = 1;
}

}  // namespace

void install_stop_handlers() {
  // std::signal is async-signal-safe to install and the handler only
  // writes the flags. Installing twice is harmless (same handler).
  std::signal(SIGINT, &on_stop_signal);
  std::signal(SIGTERM, &on_stop_signal);
}

bool stop_requested() noexcept { return g_stop != 0; }

void request_stop() noexcept { g_stop = 1; }

void note_signal_stop() noexcept {
  g_signals = g_signals + 1;
  g_stop = 1;
}

int stop_signals() noexcept { return static_cast<int>(g_signals); }

void clear_stop() noexcept {
  g_stop = 0;
  g_signals = 0;
}

}  // namespace synran::exec
