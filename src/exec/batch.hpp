// Batch-execution vocabulary shared by the executor, the runner harness,
// tests, examples, and the bench tables: input patterns, the per-rep seeding
// schema, and aggregate verdicts.
//
// Seeding schema (version 2, "synran-seed/2"): with S = SeedSequence(seed),
// repetition k of a batch uses
//   inputs     Xoshiro256(S.stream(kInputStreamBase + k))
//   adversary  S.stream(kAdversaryStreamBase + k)
//   engine     S.stream(kEngineStreamBase + k)
// Every stream is a pure function of (master seed, k): repetition k's inputs,
// adversary, and coins do not depend on repetitions 0..k-1, so any scheduler
// — serial, sharded across threads, or resumed mid-batch — reproduces the
// same executions. Schema 1 drew Random/SingleZero inputs from one shared
// sequential RNG, which coupled rep k to every rep before it; bumping to 2
// changed those two patterns' input streams (AllZero/AllOne/Half never
// consume input randomness and are unchanged).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/stats.hpp"
#include "common/rng.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "sim/adversary.hpp"
#include "sim/engine.hpp"
#include "sim/workspace.hpp"

namespace synran {

/// Version of the per-rep seed derivation documented above. Bumped whenever
/// the mapping (master seed, rep) → (inputs, adversary seed, engine seed)
/// changes, because every seeded expectation downstream moves with it.
inline constexpr int kSeedSchemaVersion = 2;

/// Stream-id bases for SeedSequence::stream. Disjoint for any batch with
/// fewer than ~2^31 repetitions.
inline constexpr std::uint64_t kAdversaryStreamBase = 1000;
inline constexpr std::uint64_t kEngineStreamBase = 2000000;
inline constexpr std::uint64_t kInputStreamBase = 0x494e505554ULL;  // "INPUT"

/// Input assignments used across the experiment suite.
enum class InputPattern : std::uint8_t {
  AllZero,
  AllOne,
  Half,      ///< first half 0, second half 1
  Random,    ///< i.i.d. fair bits (fresh per rep)
  SingleZero ///< one 0 among 1s (the chain adversary's workload)
};

const char* to_string(InputPattern p);

/// Fills `out` (resized to n) with the pattern, drawing any randomness from
/// `rng`. The in-place form lets workspaces recycle the input allocation.
void make_inputs(std::vector<Bit>& out, std::uint32_t n, InputPattern pattern,
                 Xoshiro256& rng);

std::vector<Bit> make_inputs(std::uint32_t n, InputPattern pattern,
                             Xoshiro256& rng);

/// The input RNG for repetition `rep` of a batch with master seed `seed`
/// (seeding schema 2): a fresh stream per rep, independent of all others.
Xoshiro256 input_rng_for_rep(std::uint64_t seed, std::size_t rep);

/// Per-rep adversary and engine seeds of the same schema.
std::uint64_t adversary_seed_for_rep(std::uint64_t seed, std::size_t rep);
std::uint64_t engine_seed_for_rep(std::uint64_t seed, std::size_t rep);

/// Builds a fresh adversary for one repetition; `seed` decorrelates
/// adversary randomness across reps. Factories are invoked from worker
/// threads when a batch runs parallel, so they must be safe to call
/// concurrently (stateless lambdas — the norm everywhere in this repo —
/// trivially are).
using AdversaryFactory =
    std::function<std::unique_ptr<Adversary>(std::uint64_t seed)>;

AdversaryFactory no_adversary_factory();

/// What the executor does with a repetition that still throws after its
/// retry budget (EngineOptions::max_rep_retries) is spent.
enum class FailurePolicy : std::uint8_t {
  /// Abort the whole batch: the earliest failing rep's exception is
  /// rethrown as a RepError naming the rep and its engine seed.
  FailFast,
  /// Record a RepFailure, skip the rep, and fold the survivors in rep
  /// order. The batch completes; RepeatedRunStats reports the quarantined
  /// count and the structured failures.
  Quarantine,
};

const char* to_string(FailurePolicy policy);

/// One repetition that exhausted its attempts without producing a
/// RunSummary. `seed` is the rep's engine seed (schema-2 derived from the
/// master seed), which together with the rep index is enough to replay the
/// failure in isolation.
struct RepFailure {
  std::size_t rep = 0;
  std::uint64_t seed = 0;
  std::uint32_t attempts = 0;  ///< attempts made (retries + 1)
  std::string error;           ///< exception text of the last attempt

  obs::JsonValue to_json() const;
};

/// Thrown by fail-fast batches: wraps the failing rep's exception text with
/// the rep index and engine seed, so an aborted sweep names exactly which
/// execution to replay.
class RepError : public std::runtime_error {
 public:
  RepError(std::size_t rep, std::uint64_t seed, const std::string& what);

  std::size_t rep() const { return rep_; }
  std::uint64_t seed() const { return seed_; }

 private:
  std::size_t rep_ = 0;
  std::uint64_t seed_ = 0;
};

/// Aggregates over repeated executions, backed by a metrics registry so the
/// whole batch serializes to JSON in one call (metrics().to_json()). The
/// named accessors are thin adapters over the registry entries; anything a
/// new experiment wants to track rides along in the same registry without
/// touching this struct again.
///
/// Registry contents:
///   summaries  rounds_to_decision, rounds_to_halt (terminated reps only),
///              crashes_used, messages_delivered, omissions_used,
///              messages_omitted, corruptions_used, messages_corrupted
///              (all reps)
///   counters   reps, agreement_failures, validity_failures,
///              non_terminated, decided_one, reps_quarantined
class RepeatedRunStats {
 public:
  RepeatedRunStats();

  /// Folds one repetition's summary into the aggregate. The registry's
  /// floating-point state depends on fold order; callers that must match the
  /// serial run fold in rep order.
  void add(const RunSummary& rep);

  /// Records a quarantined repetition (executor-only in practice): bumps
  /// the reps_quarantined counter and keeps the structured failure.
  /// Quarantined reps contribute to no summary.
  void note_quarantined(RepFailure failure);

  /// Expected rounds to decision across terminated reps.
  const Summary& rounds_to_decision() const;
  const Summary& rounds_to_halt() const;
  /// Adversary crash spend per rep (all reps).
  const Summary& crashes_used() const;
  /// Point-to-point deliveries per rep (communication complexity).
  const Summary& messages_delivered() const;
  /// Omission directives spent per rep (all zero under fail-stop defaults).
  const Summary& omissions_used() const;
  /// Links actually suppressed by omissions per rep.
  const Summary& messages_omitted() const;
  /// Corruption directives spent per rep (all zero under fail-stop
  /// defaults).
  const Summary& corruptions_used() const;
  /// Links actually forged by corruptions per rep.
  const Summary& messages_corrupted() const;

  std::size_t reps() const;
  std::size_t agreement_failures() const;
  std::size_t validity_failures() const;
  std::size_t non_terminated() const;
  /// Reps whose common decision was 1.
  std::size_t decided_one() const;
  /// Reps that exhausted their retry budget and were skipped (always 0
  /// under FailurePolicy::FailFast, which throws instead).
  std::size_t reps_quarantined() const;

  /// The quarantined reps, in rep order.
  const std::vector<RepFailure>& failures() const { return failures_; }

  bool all_safe() const {
    return agreement_failures() == 0 && validity_failures() == 0 &&
           non_terminated() == 0;
  }

  /// Exact checkpoint payload: {"stats":<registry snapshot with raw
  /// Welford state>,"failures":[...]} — see obs/checkpoint.hpp. A stats
  /// object rebuilt via from_checkpoint() serializes and behaves
  /// identically to the original.
  obs::JsonValue checkpoint_json() const;

  /// Inverse of checkpoint_json(). Throws ArgumentError when the payload
  /// is malformed or missing a pre-registered metric.
  static RepeatedRunStats from_checkpoint(const obs::JsonValue& payload);

  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

 private:
  obs::MetricsRegistry metrics_;
  std::vector<RepFailure> failures_;
};

struct RepeatSpec {
  std::uint32_t n = 0;
  InputPattern pattern = InputPattern::Random;
  EngineOptions engine;  ///< engine.seed is re-derived per rep
  std::size_t reps = 1;
  std::uint64_t seed = 1;  ///< master seed for the whole batch
  /// Worker threads for the batch: 1 = serial on the calling thread,
  /// N > 1 = that many workers, 0 = auto (SYNRAN_THREADS when set, else
  /// serial). Statistics are bit-identical at every thread count.
  unsigned threads = 0;
  /// What to do with a rep that throws after its retries are spent.
  FailurePolicy policy = FailurePolicy::FailFast;
};

/// Fingerprint of everything a repeated batch's statistics depend on: the
/// protocol, a caller-chosen tag (e.g. ablation variant), every
/// result-bearing spec field, and the seed schema version. Deliberately
/// excludes `threads` (results are thread-count invariant) and the
/// observer. Checkpoint ledgers store this key per cell and refuse to
/// reload a cell whose key changed.
std::string spec_cell_key(const RepeatSpec& spec, std::string_view protocol,
                          std::string_view tag);

}  // namespace synran
