// Batch-execution vocabulary shared by the executor, the runner harness,
// tests, examples, and the bench tables: input patterns, the per-rep seeding
// schema, and aggregate verdicts.
//
// Seeding schema (version 2, "synran-seed/2"): with S = SeedSequence(seed),
// repetition k of a batch uses
//   inputs     Xoshiro256(S.stream(kInputStreamBase + k))
//   adversary  S.stream(kAdversaryStreamBase + k)
//   engine     S.stream(kEngineStreamBase + k)
// Every stream is a pure function of (master seed, k): repetition k's inputs,
// adversary, and coins do not depend on repetitions 0..k-1, so any scheduler
// — serial, sharded across threads, or resumed mid-batch — reproduces the
// same executions. Schema 1 drew Random/SingleZero inputs from one shared
// sequential RNG, which coupled rep k to every rep before it; bumping to 2
// changed those two patterns' input streams (AllZero/AllOne/Half never
// consume input randomness and are unchanged).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analysis/stats.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "sim/adversary.hpp"
#include "sim/engine.hpp"
#include "sim/workspace.hpp"

namespace synran {

/// Version of the per-rep seed derivation documented above. Bumped whenever
/// the mapping (master seed, rep) → (inputs, adversary seed, engine seed)
/// changes, because every seeded expectation downstream moves with it.
inline constexpr int kSeedSchemaVersion = 2;

/// Stream-id bases for SeedSequence::stream. Disjoint for any batch with
/// fewer than ~2^31 repetitions.
inline constexpr std::uint64_t kAdversaryStreamBase = 1000;
inline constexpr std::uint64_t kEngineStreamBase = 2000000;
inline constexpr std::uint64_t kInputStreamBase = 0x494e505554ULL;  // "INPUT"

/// Input assignments used across the experiment suite.
enum class InputPattern : std::uint8_t {
  AllZero,
  AllOne,
  Half,      ///< first half 0, second half 1
  Random,    ///< i.i.d. fair bits (fresh per rep)
  SingleZero ///< one 0 among 1s (the chain adversary's workload)
};

const char* to_string(InputPattern p);

/// Fills `out` (resized to n) with the pattern, drawing any randomness from
/// `rng`. The in-place form lets workspaces recycle the input allocation.
void make_inputs(std::vector<Bit>& out, std::uint32_t n, InputPattern pattern,
                 Xoshiro256& rng);

std::vector<Bit> make_inputs(std::uint32_t n, InputPattern pattern,
                             Xoshiro256& rng);

/// The input RNG for repetition `rep` of a batch with master seed `seed`
/// (seeding schema 2): a fresh stream per rep, independent of all others.
Xoshiro256 input_rng_for_rep(std::uint64_t seed, std::size_t rep);

/// Per-rep adversary and engine seeds of the same schema.
std::uint64_t adversary_seed_for_rep(std::uint64_t seed, std::size_t rep);
std::uint64_t engine_seed_for_rep(std::uint64_t seed, std::size_t rep);

/// Builds a fresh adversary for one repetition; `seed` decorrelates
/// adversary randomness across reps. Factories are invoked from worker
/// threads when a batch runs parallel, so they must be safe to call
/// concurrently (stateless lambdas — the norm everywhere in this repo —
/// trivially are).
using AdversaryFactory =
    std::function<std::unique_ptr<Adversary>(std::uint64_t seed)>;

AdversaryFactory no_adversary_factory();

/// Aggregates over repeated executions, backed by a metrics registry so the
/// whole batch serializes to JSON in one call (metrics().to_json()). The
/// named accessors are thin adapters over the registry entries; anything a
/// new experiment wants to track rides along in the same registry without
/// touching this struct again.
///
/// Registry contents:
///   summaries  rounds_to_decision, rounds_to_halt (terminated reps only),
///              crashes_used, messages_delivered, omissions_used,
///              messages_omitted (all reps)
///   counters   reps, agreement_failures, validity_failures,
///              non_terminated, decided_one
class RepeatedRunStats {
 public:
  RepeatedRunStats();

  /// Folds one repetition's summary into the aggregate. The registry's
  /// floating-point state depends on fold order; callers that must match the
  /// serial run fold in rep order.
  void add(const RunSummary& rep);

  /// Expected rounds to decision across terminated reps.
  const Summary& rounds_to_decision() const;
  const Summary& rounds_to_halt() const;
  /// Adversary crash spend per rep (all reps).
  const Summary& crashes_used() const;
  /// Point-to-point deliveries per rep (communication complexity).
  const Summary& messages_delivered() const;
  /// Omission directives spent per rep (all zero under fail-stop defaults).
  const Summary& omissions_used() const;
  /// Links actually suppressed by omissions per rep.
  const Summary& messages_omitted() const;

  std::size_t reps() const;
  std::size_t agreement_failures() const;
  std::size_t validity_failures() const;
  std::size_t non_terminated() const;
  /// Reps whose common decision was 1.
  std::size_t decided_one() const;

  bool all_safe() const {
    return agreement_failures() == 0 && validity_failures() == 0 &&
           non_terminated() == 0;
  }

  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

 private:
  obs::MetricsRegistry metrics_;
};

struct RepeatSpec {
  std::uint32_t n = 0;
  InputPattern pattern = InputPattern::Random;
  EngineOptions engine;  ///< engine.seed is re-derived per rep
  std::size_t reps = 1;
  std::uint64_t seed = 1;  ///< master seed for the whole batch
  /// Worker threads for the batch: 1 = serial on the calling thread,
  /// N > 1 = that many workers, 0 = auto (SYNRAN_THREADS when set, else
  /// serial). Statistics are bit-identical at every thread count.
  unsigned threads = 0;
};

}  // namespace synran
