// Deterministic thread-pooled batch execution for the asynchronous engine.
//
// The exact design of exec/executor.hpp applied to async runs, with the
// same three rules that make statistics bit-identical to the serial run at
// any thread count:
//
//  1. Static seed-indexed schedule: rep k derives its inputs, scheduler,
//     delay model, and coin seed from per-rep streams of the master seed
//     (schema 2 plus the async delay stream — exec/async_batch.hpp), so
//     scheduling cannot change what a rep computes. Worker w owns reps
//     {k : k mod threads == w}.
//  2. Per-worker engine state: each rep builds its own processes, scheduler,
//     and delay model — nothing is shared between concurrent reps except
//     the read-only spec (and fault timetable, if any).
//  3. Rep-order aggregation: workers fill disjoint outcome slots; after the
//     join the results fold serially in rep order, reproducing the serial
//     run's floating-point sequence.
//
// Observers compose identically too: serial batches fire the configured
// observer live; parallel batches buffer each rep's callbacks in a private
// obs::TraceRecorder and replay them in rep order during the fold, so
// traces written through the observer are byte-identical to a 1-thread run.
#pragma once

#include "exec/async_batch.hpp"
#include "exec/executor.hpp"

namespace synran::exec {

/// Runs batches of independent seeded async executions. Stateless apart
/// from its options; one executor may run many batches.
class AsyncBatchExecutor {
 public:
  AsyncBatchExecutor() = default;
  explicit AsyncBatchExecutor(ExecOptions options) : options_(options) {}

  /// Runs spec.reps executions and returns the aggregate. spec.threads,
  /// when non-zero, overrides the executor's own thread option. `delays`
  /// may be null-valued (no factory) or return nullptr per rep — both mean
  /// the adversary-held default.
  AsyncRunStats run(const AsyncProcessFactory& factory,
                    const AsyncSchedulerFactory& schedulers,
                    const AsyncDelayFactory& delays,
                    const AsyncRepeatSpec& spec) const;

  ExecOptions options() const { return options_; }

 private:
  ExecOptions options_;
};

}  // namespace synran::exec
