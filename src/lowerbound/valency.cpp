#include "lowerbound/valency.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/check.hpp"
#include "common/dynbitset.hpp"
#include "common/rng.hpp"
#include "net/fabric.hpp"

namespace synran {

const char* to_string(Valency v) {
  switch (v) {
    case Valency::Bivalent:
      return "bivalent";
    case Valency::ZeroValent:
      return "0-valent";
    case Valency::OneValent:
      return "1-valent";
    case Valency::NullValent:
      return "null-valent";
  }
  return "?";
}

Valency classify(double min_r, double max_r, double n, double round_k) {
  const double eps = std::max(0.0, 1.0 / std::sqrt(n) - round_k / n);
  const bool low = min_r < eps;          // min r < 1/√n − k/n
  const bool high = max_r > 1.0 - eps;   // max r > 1 − 1/√n + k/n
  if (low && high) return Valency::Bivalent;
  if (low) return Valency::ZeroValent;
  if (high) return Valency::OneValent;
  return Valency::NullValent;
}

std::uint8_t classify_bounds(const PInterval& min_r, const PInterval& max_r,
                             double n, double round_k) {
  const double eps = std::max(0.0, 1.0 / std::sqrt(n) - round_k / n);
  // Each predicate can be definitely-true, definitely-false, or unknown;
  // enumerate the consistent combinations.
  const bool low_possible = min_r.lo < eps;
  const bool low_certain = min_r.hi < eps;
  const bool high_possible = max_r.hi > 1.0 - eps;
  const bool high_certain = max_r.lo > 1.0 - eps;

  std::uint8_t mask = 0;
  for (int low = 0; low < 2; ++low) {
    if (low ? !low_possible : low_certain) continue;
    for (int high = 0; high < 2; ++high) {
      if (high ? !high_possible : high_certain) continue;
      Valency v;
      if (low && high)
        v = Valency::Bivalent;
      else if (low)
        v = Valency::ZeroValent;
      else if (high)
        v = Valency::OneValent;
      else
        v = Valency::NullValent;
      mask |= static_cast<std::uint8_t>(1u << static_cast<int>(v));
    }
  }
  return mask;
}

bool bounds_decide_unique(std::uint8_t mask) {
  return mask != 0 && (mask & (mask - 1)) == 0;
}

namespace {

/// Mid-execution state at a start-of-round boundary (pending receipts not
/// yet digested).
struct State {
  std::uint32_t n = 0;
  std::vector<std::unique_ptr<Process>> procs;
  DynBitset alive;
  DynBitset halted;
  std::vector<Receipt> receipts;
  std::vector<bool> have_receipt;
  std::uint32_t budget = 0;

  State deep_copy() const {
    State s;
    s.n = n;
    s.procs.reserve(procs.size());
    for (const auto& p : procs) s.procs.push_back(p->clone());
    s.alive = alive;
    s.halted = halted;
    s.receipts = receipts;
    s.have_receipt = have_receipt;
    s.budget = budget;
    return s;
  }

  std::uint64_t digest() const {
    auto mix = [](std::uint64_t h, std::uint64_t x) {
      h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      return h;
    };
    std::uint64_t h = alive.hash();
    h = mix(h, halted.hash());
    h = mix(h, budget);
    for (std::uint32_t i = 0; i < n; ++i) {
      if (!alive.test(i)) continue;
      h = mix(h, procs[i]->state_digest());
      if (!halted.test(i)) {
        h = mix(h, have_receipt[i] ? 1 : 0);
        if (have_receipt[i]) {
          h = mix(h, receipts[i].count);
          h = mix(h, receipts[i].ones);
          h = mix(h, (static_cast<std::uint64_t>(receipts[i].zeros) << 32) ^
                         receipts[i].or_mask);
        }
      }
    }
    return h;
  }
};

struct EvalValue {
  PInterval min_r{0.0, 1.0};
  PInterval max_r{0.0, 1.0};
};

class Evaluator {
 public:
  Evaluator(const ValencyOptions& opts) : opts_(opts) {
    SYNRAN_REQUIRE(opts.per_round_cap <= 1,
                   "valency engine supports per-round cap 0 or 1");
  }

  EvalValue eval(const State& state, std::uint32_t depth) {
    ++visited_;
    // Terminal: every alive process halted. (A halted process has decided —
    // the Process contract — so the outcome is fixed.)
    {
      bool all_halted = true;
      for (std::uint32_t i = 0; i < state.n && all_halted; ++i)
        if (state.alive.test(i) && !state.halted.test(i)) all_halted = false;
      if (all_halted) return terminal_value(state);
    }
    if (depth == 0) return EvalValue{};  // [0,1] both

    const std::uint64_t key = state.digest() ^ (0x9e3779b9ULL * depth);
    if (auto it = memo_.find(key); it != memo_.end()) return it->second;

    // --- Phase A: how many coins does each active process want?
    std::vector<std::uint32_t> coin_need(state.n, 0);
    std::uint32_t total_coins = 0;
    for (std::uint32_t i = 0; i < state.n; ++i) {
      if (!state.alive.test(i) || state.halted.test(i)) continue;
      auto probe = state.procs[i]->clone();
      CountingCoinSource counter;
      const Receipt* prev =
          state.have_receipt[i] ? &state.receipts[i] : nullptr;
      (void)probe->on_round(prev, counter);
      coin_need[i] = static_cast<std::uint32_t>(counter.count());
      total_coins += coin_need[i];
    }
    SYNRAN_REQUIRE(total_coins <= 20,
                   "too many coins per round for exhaustive enumeration");

    EvalValue acc;
    acc.min_r = {0.0, 0.0};
    acc.max_r = {0.0, 0.0};
    const std::uint64_t assignments = 1ULL << total_coins;
    const double w = 1.0 / static_cast<double>(assignments);

    for (std::uint64_t bits = 0; bits < assignments; ++bits) {
      const EvalValue v = eval_after_coins(state, coin_need, bits, depth);
      acc.min_r.lo += w * v.min_r.lo;
      acc.min_r.hi += w * v.min_r.hi;
      acc.max_r.lo += w * v.max_r.lo;
      acc.max_r.hi += w * v.max_r.hi;
    }

    memo_.emplace(key, acc);
    return acc;
  }

  std::uint64_t visited() const { return visited_; }
  bool saw_disagreement() const { return saw_disagreement_; }

 private:
  EvalValue terminal_value(const State& state) {
    std::optional<Bit> value;
    bool disagree = false;
    for (std::uint32_t i = 0; i < state.n; ++i) {
      if (!state.alive.test(i)) continue;
      SYNRAN_CHECK(state.procs[i]->decided());
      const Bit d = state.procs[i]->decision();
      if (!value.has_value())
        value = d;
      else if (*value != d)
        disagree = true;
    }
    if (disagree || !value.has_value()) {
      saw_disagreement_ = disagree;
      return EvalValue{};  // [0,1]: no meaningful probability
    }
    const double p = *value == Bit::One ? 1.0 : 0.0;
    return EvalValue{{p, p}, {p, p}};
  }

  /// Runs phase A under one concrete coin assignment, then min/maxes over
  /// the adversary's fault plans.
  EvalValue eval_after_coins(const State& state,
                             const std::vector<std::uint32_t>& coin_need,
                             std::uint64_t bits, std::uint32_t depth) {
    State post = state.deep_copy();
    std::vector<std::optional<Payload>> payloads(post.n);
    std::uint32_t offset = 0;
    bool anyone_sending = false;
    for (std::uint32_t i = 0; i < post.n; ++i) {
      if (!post.alive.test(i) || post.halted.test(i)) continue;
      std::vector<bool> tape(coin_need[i]);
      for (std::uint32_t c = 0; c < coin_need[i]; ++c)
        tape[c] = (bits >> (offset + c)) & 1;
      offset += coin_need[i];
      TapeCoinSource coins(std::move(tape));
      const Receipt* prev = post.have_receipt[i] ? &post.receipts[i] : nullptr;
      payloads[i] = post.procs[i]->on_round(prev, coins);
      if (!payloads[i].has_value())
        post.halted.set(i);
      else
        anyone_sending = true;
    }

    if (!anyone_sending) return terminal_value(post);

    // Active receivers (will digest this round's receipt).
    DynBitset active = post.alive;
    post.halted.for_each_set([&](std::size_t i) { active.reset(i); });

    // Candidate plans: no-crash, plus (victim, delivery-mask) for every
    // sender and every subset of the other active receivers.
    EvalValue best;
    bool first = true;
    const auto consider = [&](const FaultPlan& plan) {
      State child = post.deep_copy();
      DynBitset receivers = active;
      for (const auto& c : plan.crashes) receivers.reset(c.victim);
      RoundTraffic traffic{payloads, &plan};
      const auto delivered = deliver(child.n, traffic, receivers);
      receivers.for_each_set([&](std::size_t i) {
        child.receipts[i] = delivered[i];
        child.have_receipt[i] = true;
      });
      for (const auto& c : plan.crashes) child.alive.reset(c.victim);
      child.budget -= static_cast<std::uint32_t>(plan.crash_count());

      const EvalValue v = eval(child, depth - 1);
      if (first) {
        best = v;
        first = false;
      } else {
        best.min_r.lo = std::min(best.min_r.lo, v.min_r.lo);
        best.min_r.hi = std::min(best.min_r.hi, v.min_r.hi);
        best.max_r.lo = std::max(best.max_r.lo, v.max_r.lo);
        best.max_r.hi = std::max(best.max_r.hi, v.max_r.hi);
      }
    };

    consider(FaultPlan{});
    if (post.budget > 0 && opts_.per_round_cap >= 1) {
      for (std::uint32_t s = 0; s < post.n; ++s) {
        if (!payloads[s].has_value()) continue;
        // Delivery subsets range over the other active receivers.
        std::vector<std::uint32_t> others;
        for (std::uint32_t r = 0; r < post.n; ++r)
          if (r != s && active.test(r)) others.push_back(r);
        const std::uint64_t subsets = 1ULL << others.size();
        SYNRAN_REQUIRE(others.size() <= 16,
                       "delivery-mask enumeration too large");
        for (std::uint64_t m = 0; m < subsets; ++m) {
          FaultPlan plan;
          CrashDirective c;
          c.victim = s;
          c.deliver_to = DynBitset(post.n);
          for (std::size_t j = 0; j < others.size(); ++j)
            if ((m >> j) & 1) c.deliver_to.set(others[j]);
          plan.crashes.push_back(std::move(c));
          consider(plan);
        }
      }
    }
    return best;
  }

  ValencyOptions opts_;
  std::unordered_map<std::uint64_t, EvalValue> memo_;
  std::uint64_t visited_ = 0;
  bool saw_disagreement_ = false;
};

State initial_state(const ProcessFactory& factory,
                    const std::vector<Bit>& inputs,
                    const ValencyOptions& options) {
  State s;
  s.n = static_cast<std::uint32_t>(inputs.size());
  s.alive = DynBitset(s.n, true);
  s.halted = DynBitset(s.n, false);
  s.receipts.assign(s.n, Receipt{});
  s.have_receipt.assign(s.n, false);
  s.budget = options.t_budget;
  s.procs.reserve(s.n);
  for (std::uint32_t i = 0; i < s.n; ++i)
    s.procs.push_back(factory.make(i, s.n, inputs[i]));
  return s;
}

}  // namespace

ValencyVerdict evaluate_initial_state(const ProcessFactory& factory,
                                      const std::vector<Bit>& inputs,
                                      const ValencyOptions& options) {
  SYNRAN_REQUIRE(!inputs.empty() && inputs.size() <= 6,
                 "valency engine is for tiny systems (n <= 6)");
  SYNRAN_REQUIRE(options.t_budget < inputs.size(),
                 "t must leave at least one process alive");

  Evaluator ev(options);
  const State s0 = initial_state(factory, inputs, options);
  const EvalValue v = ev.eval(s0, options.max_depth);

  ValencyVerdict out;
  out.min_r = v.min_r;
  out.max_r = v.max_r;
  out.classes = classify_bounds(v.min_r, v.max_r,
                                static_cast<double>(inputs.size()), 1.0);
  out.states_visited = ev.visited();
  out.saw_disagreement = ev.saw_disagreement();
  return out;
}

ValencyVerdict evaluate_after_plan(const WorldView& world,
                                   const FaultPlan& plan,
                                   const ValencyOptions& options,
                                   double round_for_classification) {
  SYNRAN_REQUIRE(world.n() <= 6, "valency engine is for tiny systems");
  SYNRAN_REQUIRE(plan.crash_count() <= world.budget_left(),
                 "plan exceeds the execution's remaining budget");

  // Reconstruct a start-of-round state: clone the processes (already past
  // phase A), apply the plan's deliveries, and charge the budget.
  State post;
  post.n = world.n();
  post.alive = world.alive();
  post.halted = world.halted();
  post.receipts.assign(post.n, Receipt{});
  post.have_receipt.assign(post.n, false);
  post.budget =
      world.budget_left() - static_cast<std::uint32_t>(plan.crash_count());
  post.procs.reserve(post.n);
  for (ProcessId i = 0; i < post.n; ++i)
    post.procs.push_back(world.process(i).clone());

  DynBitset receivers = post.alive;
  for (const auto& c : plan.crashes) receivers.reset(c.victim);
  DynBitset active = receivers;
  post.halted.for_each_set([&](std::size_t i) { active.reset(i); });

  RoundTraffic traffic{world.payloads(), &plan};
  const auto delivered = deliver(post.n, traffic, active);
  active.for_each_set([&](std::size_t i) {
    post.receipts[i] = delivered[i];
    post.have_receipt[i] = true;
  });
  for (const auto& c : plan.crashes) post.alive.reset(c.victim);

  Evaluator ev(options);
  const EvalValue v = ev.eval(post, options.max_depth);

  ValencyVerdict out;
  out.min_r = v.min_r;
  out.max_r = v.max_r;
  out.classes = classify_bounds(v.min_r, v.max_r,
                                static_cast<double>(world.n()),
                                round_for_classification);
  out.states_visited = ev.visited();
  out.saw_disagreement = ev.saw_disagreement();
  return out;
}

InitialStateFinding find_bivalent_or_null_initial_state(
    const ProcessFactory& factory, std::uint32_t n,
    const ValencyOptions& options) {
  InitialStateFinding best;
  const std::uint8_t wanted =
      static_cast<std::uint8_t>(1u << static_cast<int>(Valency::Bivalent)) |
      static_cast<std::uint8_t>(1u << static_cast<int>(Valency::NullValent));

  // The Lemma 3.5 chain: 0^n, then flip inputs one at a time up to 1^n.
  std::vector<Bit> inputs(n, Bit::Zero);
  for (std::uint32_t flipped = 0; flipped <= n; ++flipped) {
    if (flipped > 0) inputs[flipped - 1] = Bit::One;
    const auto verdict = evaluate_initial_state(factory, inputs, options);
    const bool is_wanted =
        verdict.classes != 0 && (verdict.classes & ~wanted) == 0;
    if (is_wanted) {
      best.inputs = inputs;
      best.verdict = verdict;
      best.found = true;
      return best;
    }
    // Remember the most informative near-miss for reporting.
    if (best.inputs.empty() ||
        (verdict.classes & wanted) != 0) {
      best.inputs = inputs;
      best.verdict = verdict;
    }
  }
  return best;
}

}  // namespace synran
