// Exact valency evaluation for tiny systems (§3.2 of the paper).
//
// The lower-bound proof classifies an execution state α_k by
//     min r(α_k) and max r(α_k),   r(α_k) = {Pr[1 | α_k, b] : b ∈ B},
// where B is the class of adversaries failing ≤ 4√(n·ln n)+1 processes per
// round. For tiny n this library evaluates those quantities *exactly* by
// exhausting the game tree: every coin assignment of every round (protocols
// draw coins through CoinSource, so a TapeCoinSource enumerates them) and
// every fault action of a per-round-capped adversary.
//
// Because randomized protocols terminate with probability 1 but not within a
// bounded horizon, the recursion carries interval bounds: subtrees cut off at
// the depth limit contribute [0,1]. The deeper the horizon, the tighter the
// intervals; terminating branches are exact.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/ids.hpp"
#include "sim/adversary.hpp"
#include "sim/process.hpp"

namespace synran {

/// Closed interval bound on a probability.
struct PInterval {
  double lo = 0.0;
  double hi = 1.0;
  double width() const { return hi - lo; }
  bool exact(double tol = 1e-12) const { return width() <= tol; }
};

/// The four §3.2 classes. The table's margins are ε_k = 1/√n − k/n.
enum class Valency : std::uint8_t {
  Bivalent = 0,
  ZeroValent = 1,
  OneValent = 2,
  NullValent = 3,
};

const char* to_string(Valency v);

/// Exact classification given exact min/max r values.
Valency classify(double min_r, double max_r, double n, double round_k);

/// With interval bounds, several classes may remain possible; returns a
/// bitmask over Valency values (bit v set = class v consistent).
std::uint8_t classify_bounds(const PInterval& min_r, const PInterval& max_r,
                             double n, double round_k);
bool bounds_decide_unique(std::uint8_t mask);

struct ValencyOptions {
  /// Adversary class: crashes allowed per round. Only 0 and 1 are supported
  /// (the branching over simultaneous multi-crash delivery masks explodes;
  /// the paper's round-1 argument needs exactly one).
  std::uint32_t per_round_cap = 1;
  /// Total crash budget t.
  std::uint32_t t_budget = 1;
  /// Horizon: rounds explored before a subtree returns [0,1].
  std::uint32_t max_depth = 12;
};

/// The engine's verdict for one state.
struct ValencyVerdict {
  PInterval min_r;  ///< bounds on min over adversaries of Pr[decide 1]
  PInterval max_r;  ///< bounds on max over adversaries of Pr[decide 1]
  std::uint8_t classes = 0;  ///< consistent §3.2 classes at the queried round
  std::uint64_t states_visited = 0;
  /// True when an explored terminal branch ended in disagreement — a
  /// protocol bug the engine surfaces rather than tolerates.
  bool saw_disagreement = false;
};

/// Evaluates the initial state of `factory` on `inputs`.
ValencyVerdict evaluate_initial_state(const ProcessFactory& factory,
                                      const std::vector<Bit>& inputs,
                                      const ValencyOptions& options);

/// Evaluates the state reached from a live execution's adversary decision
/// point (`world`, i.e. after phase A) by applying `plan` and delivering.
/// This is what lets an adversary *play* the §3.3–3.5 strategy: query the
/// exact valency of every candidate fault action mid-execution and pick the
/// one that stays bivalent/null-valent. `round_for_classification` sets the
/// ε_k margin (usually the next round's index). Tiny systems only.
ValencyVerdict evaluate_after_plan(const WorldView& world,
                                   const FaultPlan& plan,
                                   const ValencyOptions& options,
                                   double round_for_classification);

/// Lemma 3.5 executable: searches the input chain 0^n → 1^n (flipping one
/// input at a time) for an initial state that is bivalent or null-valent —
/// possibly after the adversary's first-round single crash (which the
/// engine's round-1 min/max already ranges over).
struct InitialStateFinding {
  std::vector<Bit> inputs;
  ValencyVerdict verdict;
  bool found = false;  ///< a provably bivalent-or-null-valent state exists
};
InitialStateFinding find_bivalent_or_null_initial_state(
    const ProcessFactory& factory, std::uint32_t n,
    const ValencyOptions& options);

}  // namespace synran
