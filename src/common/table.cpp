#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace synran {

Table& Table::header(std::vector<std::string> cols) {
  header_ = std::move(cols);
  return *this;
}

Table& Table::row(std::vector<Cell> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

Table& Table::precision(int digits) {
  precision_ = digits;
  return *this;
}

std::string Table::render_cell(const Cell& c) const {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  if (const auto* i = std::get_if<long long>(&c)) return std::to_string(*i);
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision_) << std::get<double>(c);
  return os.str();
}

void Table::print(std::ostream& os) const {
  // Render everything first so widths can be computed.
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size() + 1);
  rendered.push_back(header_);
  for (const auto& r : rows_) {
    std::vector<std::string> cells;
    cells.reserve(r.size());
    for (const auto& c : r) cells.push_back(render_cell(c));
    rendered.push_back(std::move(cells));
  }

  std::size_t ncols = 0;
  for (const auto& r : rendered) ncols = std::max(ncols, r.size());
  std::vector<std::size_t> width(ncols, 0);
  for (const auto& r : rendered)
    for (std::size_t i = 0; i < r.size(); ++i)
      width[i] = std::max(width[i], r[i].size());

  const auto rule = [&] {
    os << '+';
    for (std::size_t i = 0; i < ncols; ++i)
      os << std::string(width[i] + 2, '-') << '+';
    os << '\n';
  };

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  rule();
  for (std::size_t ri = 0; ri < rendered.size(); ++ri) {
    os << '|';
    for (std::size_t i = 0; i < ncols; ++i) {
      const std::string& cell = i < rendered[ri].size() ? rendered[ri][i] : "";
      os << ' ' << std::left << std::setw(static_cast<int>(width[i])) << cell
         << " |";
    }
    os << '\n';
    if (ri == 0) rule();
  }
  rule();
}

void Table::write_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) os << ',';
      const std::string& c = cells[i];
      if (c.find(',') != std::string::npos ||
          c.find('"') != std::string::npos) {
        os << '"';
        for (char ch : c) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << c;
      }
    }
    os << '\n';
  };

  emit(header_);
  for (const auto& r : rows_) {
    std::vector<std::string> cells;
    cells.reserve(r.size());
    for (const auto& c : r) cells.push_back(render_cell(c));
    emit(cells);
  }
}

}  // namespace synran
