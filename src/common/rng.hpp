// Deterministic random-number generation.
//
// Requirements that shape this design:
//  * Experiments must be bit-for-bit reproducible from a single master seed.
//  * Each simulated process owns an *independent* stream (the paper's local
//    coins are independent random variables), derived from the master seed and
//    the process id — no shared-state contention, no ordering sensitivity.
//  * The lower-bound engine must be able to *enumerate* coin outcomes instead
//    of sampling them, so protocols draw coins through the CoinSource
//    interface rather than from a concrete generator.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace synran {

/// SplitMix64 — used to expand seeds into generator state.
/// Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). Fast, high-quality, 2^256-1 period.
class Xoshiro256 {
 public:
  /// Seeds all 256 bits of state via SplitMix64 per the authors' guidance.
  explicit Xoshiro256(std::uint64_t seed) { reseed(seed); }

  /// Re-initializes in place to the same state `Xoshiro256(seed)` would
  /// produce; lets long-lived workspaces restart streams without reallocating.
  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
    // A zero state is a fixed point; SplitMix64 cannot emit four zeros in a
    // row, but keep the guard explicit.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). Lemire's multiply-shift rejection method
  /// ("Fast Random Integer Generation in an Interval", ACM TOMACS 2019):
  /// the high word of a 64×64→128-bit product maps next() into [0, bound)
  /// without division on the common path; the low word is rejected below
  /// 2^64 mod bound to remove the bias, computing that remainder only when
  /// a rejection is actually possible.
  std::uint64_t below(std::uint64_t bound) {
    SYNRAN_REQUIRE(bound > 0, "below() needs a positive bound");
    unsigned __int128 m =
        static_cast<unsigned __int128>(next()) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;  // 2^64 mod bound
      while (lo < threshold) {
        m = static_cast<unsigned __int128>(next()) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  bool flip() { return (next() >> 63) != 0; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

/// Derives independent named sub-seeds from a master seed. Streams are
/// decorrelated by hashing (seed, stream-id) through SplitMix64.
class SeedSequence {
 public:
  explicit constexpr SeedSequence(std::uint64_t master) : master_(master) {}

  /// Sub-seed for stream `id` (e.g. one per process, or per experiment rep).
  constexpr std::uint64_t stream(std::uint64_t id) const {
    SplitMix64 sm(master_ ^ (0x9e3779b97f4a7c15ULL * (id + 1)));
    sm.next();
    return sm.next();
  }

  std::uint64_t master() const { return master_; }

 private:
  std::uint64_t master_;
};

/// Source of fair coin flips as seen by a protocol. Protocols MUST draw all
/// their randomness through this interface: the simulator passes a PRNG-backed
/// source, while the lower-bound engine passes a tape to enumerate outcomes.
class CoinSource {
 public:
  virtual ~CoinSource() = default;
  /// One fair coin flip.
  virtual bool flip() = 0;
};

/// PRNG-backed coin source (production path).
class RandomCoinSource final : public CoinSource {
 public:
  explicit RandomCoinSource(std::uint64_t seed) : rng_(seed) {}
  bool flip() override { return rng_.flip(); }

  /// Restarts the stream as if freshly constructed from `seed`; engine
  /// workspaces reuse one source per process slot across repetitions.
  void reseed(std::uint64_t seed) { rng_.reseed(seed); }

  Xoshiro256& rng() { return rng_; }

 private:
  Xoshiro256 rng_;
};

/// Tape-backed coin source: replays a predetermined bit sequence and records
/// how many flips were demanded. Used by the exact valency engine to branch
/// on every possible coin outcome.
class TapeCoinSource final : public CoinSource {
 public:
  TapeCoinSource() = default;
  explicit TapeCoinSource(std::vector<bool> tape) : tape_(std::move(tape)) {}

  bool flip() override {
    SYNRAN_CHECK_MSG(pos_ < tape_.size(),
                     "coin tape exhausted — caller under-provisioned flips");
    return tape_[pos_++];
  }

  std::size_t consumed() const { return pos_; }
  void reset(std::vector<bool> tape) {
    tape_ = std::move(tape);
    pos_ = 0;
  }

 private:
  std::vector<bool> tape_;
  std::size_t pos_ = 0;
};

/// Counts flips without an actual tape; every flip returns false. Used to
/// discover how many coins a protocol wants in a round before enumerating.
class CountingCoinSource final : public CoinSource {
 public:
  bool flip() override {
    ++count_;
    return false;
  }
  std::size_t count() const { return count_; }

 private:
  std::size_t count_ = 0;
};

}  // namespace synran
