// Aligned-table and CSV output for experiment harnesses.
//
// Every bench binary prints a paper-shaped table; this keeps the formatting in
// one place so all experiments look alike.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace synran {

/// A cell is a string, an integer, or a double (printed with fixed precision).
using Cell = std::variant<std::string, long long, double>;

/// Column-aligned text table with an optional title, rendered to any ostream.
class Table {
 public:
  explicit Table(std::string title = {}) : title_(std::move(title)) {}

  /// Sets the header row; resets nothing else.
  Table& header(std::vector<std::string> cols);

  /// Appends a data row; the row may be shorter than the header.
  Table& row(std::vector<Cell> cells);

  /// Digits after the decimal point for double cells (default 3).
  Table& precision(int digits);

  /// Renders with Unicode box-ish separators, aligned columns.
  void print(std::ostream& os) const;

  /// Renders as RFC-4180-ish CSV (no quoting of embedded commas needed here,
  /// but commas in cells are escaped by quoting).
  void write_csv(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }
  const std::string& title() const { return title_; }
  /// Structured read-back for machine-readable reporters (bench JSON).
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<Cell>>& rows() const { return rows_; }

 private:
  std::string render_cell(const Cell& c) const;

  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 3;
};

}  // namespace synran
