// Lightweight always-on invariant checking.
//
// Simulation correctness is the whole point of this library, so checks stay on
// in release builds; the hot paths use them sparingly.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace synran {

/// Thrown when an internal invariant is violated. Catching this is a bug —
/// it indicates broken library state, not bad user input.
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown on invalid arguments to public API entry points.
class ArgumentError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

namespace detail {
[[noreturn]] inline void check_failed(const char* kind, const char* expr,
                                      const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  if (kind[0] == 'S') throw InvariantError(os.str());
  throw ArgumentError(os.str());
}
}  // namespace detail

}  // namespace synran

/// Internal invariant; violation is a library bug.
#define SYNRAN_CHECK(expr)                                                  \
  do {                                                                      \
    if (!(expr))                                                            \
      ::synran::detail::check_failed("SYNRAN_CHECK", #expr, __FILE__,       \
                                     __LINE__, std::string{});              \
  } while (false)

#define SYNRAN_CHECK_MSG(expr, msg)                                         \
  do {                                                                      \
    if (!(expr))                                                            \
      ::synran::detail::check_failed("SYNRAN_CHECK", #expr, __FILE__,       \
                                     __LINE__, (msg));                      \
  } while (false)

/// Precondition on a public API argument; violation throws ArgumentError.
#define SYNRAN_REQUIRE(expr, msg)                                           \
  do {                                                                      \
    if (!(expr))                                                            \
      ::synran::detail::check_failed("REQUIRE", #expr, __FILE__, __LINE__,  \
                                     (msg));                                \
  } while (false)
