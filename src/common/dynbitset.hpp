// A small dynamic bitset tuned for the message-delivery masks used by the
// network fabric: fixed size after construction, fast popcount/AND/OR, and
// cheap iteration over set bits. std::vector<bool> lacks popcount and word
// access; std::bitset needs a compile-time size.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace synran {

class DynBitset {
 public:
  DynBitset() = default;

  /// All-clear bitset of `n` bits.
  explicit DynBitset(std::size_t n, bool fill = false)
      : n_(n), words_((n + 63) / 64, fill ? ~0ULL : 0ULL) {
    trim();
  }

  std::size_t size() const { return n_; }

  bool test(std::size_t i) const {
    SYNRAN_CHECK(i < n_);
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  void set(std::size_t i, bool v = true) {
    SYNRAN_CHECK(i < n_);
    const std::uint64_t mask = 1ULL << (i & 63);
    if (v)
      words_[i >> 6] |= mask;
    else
      words_[i >> 6] &= ~mask;
  }

  void reset(std::size_t i) { set(i, false); }

  void set_all() {
    for (auto& w : words_) w = ~0ULL;
    trim();
  }

  void clear_all() {
    for (auto& w : words_) w = 0ULL;
  }

  std::size_t count() const {
    std::size_t c = 0;
    for (auto w : words_) c += static_cast<std::size_t>(std::popcount(w));
    return c;
  }

  bool any() const {
    for (auto w : words_)
      if (w) return true;
    return false;
  }

  bool none() const { return !any(); }

  DynBitset& operator&=(const DynBitset& o) {
    SYNRAN_CHECK(n_ == o.n_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
    return *this;
  }

  DynBitset& operator|=(const DynBitset& o) {
    SYNRAN_CHECK(n_ == o.n_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
    return *this;
  }

  DynBitset& operator^=(const DynBitset& o) {
    SYNRAN_CHECK(n_ == o.n_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= o.words_[i];
    trim();
    return *this;
  }

  friend DynBitset operator&(DynBitset a, const DynBitset& b) { return a &= b; }
  friend DynBitset operator|(DynBitset a, const DynBitset& b) { return a |= b; }
  friend DynBitset operator^(DynBitset a, const DynBitset& b) { return a ^= b; }

  friend bool operator==(const DynBitset& a, const DynBitset& b) {
    return a.n_ == b.n_ && a.words_ == b.words_;
  }

  /// Calls `f(index)` for each set bit, in increasing order.
  template <typename F>
  void for_each_set(F&& f) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w) {
        const int b = std::countr_zero(w);
        f(wi * 64 + static_cast<std::size_t>(b));
        w &= w - 1;
      }
    }
  }

  /// 64-bit mix of the contents; used by memoization tables.
  std::uint64_t hash() const {
    std::uint64_t h = 0x243f6a8885a308d3ULL ^ n_;
    for (auto w : words_) {
      h ^= w + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return h;
  }

 private:
  // Keeps bits past n_ clear so count()/==/hash() stay canonical.
  void trim() {
    if (n_ % 64 != 0 && !words_.empty())
      words_.back() &= (~0ULL >> (64 - (n_ % 64)));
  }

  std::size_t n_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace synran
