// Core vocabulary types shared across the library.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>

namespace synran {

/// Index of a process in [0, n). Plain integer type: processes are dense,
/// array-indexed, and created only by the simulator.
using ProcessId = std::uint32_t;

/// 1-based round counter, matching the paper's "round r" convention.
/// Round 0 is "before the first exchange".
using Round = std::uint32_t;

/// A consensus value. The paper's consensus is binary; we keep a tiny enum so
/// signatures stay self-describing.
enum class Bit : std::uint8_t { Zero = 0, One = 1 };

constexpr Bit bit_of(bool b) { return b ? Bit::One : Bit::Zero; }
constexpr int to_int(Bit b) { return static_cast<int>(b); }
constexpr Bit flip(Bit b) { return b == Bit::Zero ? Bit::One : Bit::Zero; }

/// A possibly-hidden game input: the adversary replaces hidden values with
/// the default value "—" (nullopt) as in §2 of the paper.
template <typename T>
using Masked = std::optional<T>;

}  // namespace synran
