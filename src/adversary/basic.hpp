// Baseline adversaries: scripted crashes, random crashes, and the classic
// chain adversary that forces deterministic protocols to their t+1-round
// worst case.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "sim/adversary.hpp"

namespace synran {

/// Crashes a fixed schedule of victims. Entries whose victim is already dead,
/// halted, or scheduled for a different round are skipped.
class StaticCrashAdversary final : public Adversary {
 public:
  struct Entry {
    Round round = 1;
    ProcessId victim = 0;
    /// Recipients that still get the victim's final message. Empty vector =
    /// deliver to nobody.
    std::vector<ProcessId> deliver_to;
  };

  explicit StaticCrashAdversary(std::vector<Entry> schedule)
      : schedule_(std::move(schedule)) {}

  FaultPlan plan_round(const WorldView& world) override;
  const char* name() const override { return "static"; }

 private:
  std::vector<Entry> schedule_;
};

/// Each round, crashes a uniformly random number of random senders (up to
/// `max_per_round` and the remaining budget), each with an independently
/// random delivery subset. A "chaos monkey" for property tests: protocols
/// must stay correct under it, though it rarely delays them much.
class RandomCrashAdversary final : public Adversary {
 public:
  struct Options {
    std::uint32_t max_per_round = 1;
    /// Probability that a given round crashes anyone at all.
    double activity = 0.5;
    std::uint64_t seed = 7;
  };

  explicit RandomCrashAdversary(Options opts) : opts_(opts), rng_(opts.seed) {}

  void begin(std::uint32_t n, std::uint32_t t_budget) override;
  FaultPlan plan_round(const WorldView& world) override;
  const char* name() const override { return "random"; }

 private:
  Options opts_;
  Xoshiro256 rng_;
};

/// The classic lower-bound chain for deterministic crash consensus: keep the
/// minority value 0 known to exactly one alive process, crash that process
/// each round delivering its message to a single fresh successor. Against
/// FloodMin this hides value 0 for t rounds, forcing the full t+1 schedule
/// and defeating early deciding until the budget runs out.
class ChainHidingAdversary final : public Adversary {
 public:
  ChainHidingAdversary() = default;

  void begin(std::uint32_t n, std::uint32_t t_budget) override;
  FaultPlan plan_round(const WorldView& world) override;
  const char* name() const override { return "chain"; }

 private:
  std::vector<bool> was_holder_;
};

}  // namespace synran
