#include "adversary/valency.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "sim/rollout.hpp"

namespace synran {

void ValencySamplingAdversary::begin(std::uint32_t /*n*/,
                                     std::uint32_t /*t_budget*/) {
  rng_ = Xoshiro256(opts_.seed);
}

double ValencySamplingAdversary::estimate_p1(const WorldView& world,
                                             const FaultPlan& plan) {
  NoAdversary neutral;
  std::uint32_t ones = 0, total = 0;
  for (std::uint32_t k = 0; k < opts_.rollouts; ++k) {
    const auto out =
        rollout(world, plan, neutral, rng_.next(), opts_.max_rollout_rounds);
    if (!out.terminated) continue;  // counted as "no information"
    ++total;
    if (out.decided_one) ++ones;
  }
  if (total == 0) return 0.5;
  return static_cast<double>(ones) / static_cast<double>(total);
}

FaultPlan ValencySamplingAdversary::plan_round(const WorldView& world) {
  const std::uint32_t n = world.n();
  const std::uint32_t budget = world.round_budget();

  std::vector<ProcessId> one_senders, zero_senders;
  for (ProcessId i = 0; i < n; ++i) {
    const auto p = world.payload(i);
    if (!p.has_value() || (*p & payload::kDeterministicFlag)) continue;
    if (payload::supports(*p, Bit::One))
      one_senders.push_back(i);
    else
      zero_senders.push_back(i);
  }
  if (budget == 0 || (one_senders.empty() && zero_senders.empty())) return {};

  // Shuffle once so "the first k" is a random k-subset.
  const auto shuffle = [&](std::vector<ProcessId>& v) {
    for (std::size_t k = 0; k + 1 < v.size(); ++k) {
      const std::size_t j = k + rng_.below(v.size() - k);
      std::swap(v[k], v[j]);
    }
  };
  shuffle(one_senders);
  shuffle(zero_senders);

  const double unit =
      std::sqrt(static_cast<double>(n) *
                std::max(0.6931, std::log(static_cast<double>(n))));

  // Build the candidate set.
  std::vector<FaultPlan> candidates;
  candidates.emplace_back();  // do nothing

  const auto trim_plan = [&](const std::vector<ProcessId>& pool,
                             std::uint32_t k) {
    FaultPlan plan;
    k = std::min<std::uint32_t>(
        {k, budget, static_cast<std::uint32_t>(pool.size())});
    for (std::uint32_t i = 0; i < k; ++i) {
      CrashDirective c;
      c.victim = pool[i];
      c.deliver_to = DynBitset(n);
      plan.crashes.push_back(std::move(c));
    }
    return plan;
  };

  for (double frac : opts_.crash_fractions) {
    const auto k = static_cast<std::uint32_t>(std::ceil(frac * unit));
    if (k == 0) continue;
    if (!one_senders.empty()) candidates.push_back(trim_plan(one_senders, k));
    if (!zero_senders.empty())
      candidates.push_back(trim_plan(zero_senders, k));
  }

  // The Z=0 half-split (hide every zero from alternating receivers).
  if (!zero_senders.empty() && zero_senders.size() <= budget) {
    DynBitset half(n);
    bool tick = false;
    for (ProcessId i = 0; i < n; ++i) {
      if (!world.alive().test(i) || world.halted().test(i)) continue;
      if (tick) half.set(i);
      tick = !tick;
    }
    FaultPlan plan;
    for (ProcessId v : zero_senders) {
      CrashDirective c;
      c.victim = v;
      c.deliver_to = half;
      plan.crashes.push_back(std::move(c));
    }
    candidates.push_back(std::move(plan));
  }

  // Pick the candidate whose outcome distribution stays closest to 1/2,
  // breaking ties toward fewer crashes (cheaper for the same bivalence).
  double best_score = 2.0;
  std::size_t best = 0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const double p1 = estimate_p1(world, candidates[i]);
    const double score = std::abs(p1 - 0.5);
    const bool better =
        score < best_score - 1e-12 ||
        (std::abs(score - best_score) <= 1e-12 &&
         candidates[i].crash_count() < candidates[best].crash_count());
    if (better) {
      best_score = score;
      best = i;
    }
  }
  return std::move(candidates[best]);
}

}  // namespace synran
