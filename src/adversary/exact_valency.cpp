#include "adversary/exact_valency.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace synran {

void ExactValencyAdversary::begin(std::uint32_t n,
                                  std::uint32_t /*t_budget*/) {
  SYNRAN_REQUIRE(n <= 4, "exact-valency adversary is for n <= 4");
  chosen_classes_.clear();
}

FaultPlan ExactValencyAdversary::plan_round(const WorldView& world) {
  const std::uint32_t n = world.n();
  ValencyOptions vopts;
  vopts.per_round_cap = 1;
  vopts.t_budget = 0;  // overwritten per query via the world's budget
  vopts.max_depth = opts_.max_depth;

  // Candidate plans: no-crash plus every (victim, delivery-mask) pair, as
  // in the engine's own enumeration.
  DynBitset active = world.alive();
  world.halted().for_each_set([&](std::size_t i) { active.reset(i); });

  std::vector<FaultPlan> candidates;
  candidates.emplace_back();
  if (world.round_budget() >= 1) {
    for (ProcessId s = 0; s < n; ++s) {
      if (!world.sending(s)) continue;
      std::vector<std::uint32_t> others;
      for (ProcessId r = 0; r < n; ++r)
        if (r != s && active.test(r)) others.push_back(r);
      const std::uint64_t subsets = 1ULL << others.size();
      for (std::uint64_t m = 0; m < subsets; ++m) {
        FaultPlan plan;
        CrashDirective c;
        c.victim = s;
        c.deliver_to = DynBitset(n);
        for (std::size_t j = 0; j < others.size(); ++j)
          if ((m >> j) & 1) c.deliver_to.set(others[j]);
        plan.crashes.push_back(std::move(c));
        candidates.push_back(std::move(plan));
      }
    }
  }

  const std::uint8_t wanted =
      static_cast<std::uint8_t>(1u << static_cast<int>(Valency::Bivalent)) |
      static_cast<std::uint8_t>(1u << static_cast<int>(Valency::NullValent));

  // Classification margin: the paper's ε_k = 1/√n − k/n is built for large
  // n (it stays positive for Θ(t/√(n·log n)) rounds); at n ≤ 4 it hits zero
  // by round 2 and the table degenerates to "everything null-valent". The
  // executable strategy therefore classifies with the fixed round-0 margin
  // ε = 1/√n throughout.
  const double k = 0.0;
  std::size_t best = 0;
  double best_score = -2.0;
  std::uint8_t best_classes = 0;

  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const auto verdict = evaluate_after_plan(world, candidates[i], vopts, k);
    const bool certainly_wanted =
        verdict.classes != 0 && (verdict.classes & ~wanted) == 0;
    if (certainly_wanted) {
      // §3.3/§3.4: stay bivalent or null-valent. Prefer the cheapest such
      // action (no-crash is candidate 0 and wins ties by order).
      chosen_classes_.push_back(verdict.classes);
      return candidates[i];
    }
    // §3.5 fallback: every action commits — keep implementing the min-r
    // strategy (drive Pr[decide 1] down), preferring any residual swing.
    const double swing = verdict.max_r.lo - verdict.min_r.hi;
    const double score = (1.0 - verdict.min_r.hi) + std::max(0.0, swing);
    if (score > best_score) {
      best_score = score;
      best = i;
      best_classes = verdict.classes;
    }
  }
  chosen_classes_.push_back(best_classes);
  return std::move(candidates[best]);
}

}  // namespace synran
