// Byzantine corrupted-value injectors: a seeded equivocator and an adaptive
// collective-coin attacker, both spending the engine's byzantine budget
// (EngineOptions::byzantine_budget) instead of crashes or omissions.
//
// Corrupted values are the furthest extension beyond the paper's fail-stop
// model (§3.1) this library supports: a directive replaces one live sender's
// round message with per-receiver forged payloads, the corrupted-value
// regime of the Byzantine-agreement literature (King & Saia, JACM 2016
// correction). ByzantineAdversary equivocates King–Saia style — different
// receivers are shown conflicting values — while AdaptiveCoinAttacker is
// shaped after the adaptively-secure coin-flip adversary of Haitner &
// Karidi-Heller (2020): it observes each round's realized coin flips and
// spends its corruption budget flipping the visible minority until the
// collective coin leans its way. Experiment E17 races both against the
// protocol zoo.
#pragma once

#include <cstdint>
#include <memory>

#include "common/rng.hpp"
#include "sim/adversary.hpp"

namespace synran {

struct ByzantineOptions {
  /// Per-sender corruption probability: each live sender's round message is
  /// independently chosen for equivocation with this probability. Must lie
  /// in [0, 1].
  double corrupt_rate = 0.1;
  /// Seed for the corruption coins. Bit-reproducible: the same seed and
  /// world evolution produce the same forgeries at any --threads count.
  std::uint64_t seed = 23;
};

/// Equivocating value-corruptor: each corrupted sender's receivers are split
/// into two alternating camps that observe conflicting forged values — camp
/// A a message vouching for value 0, camp B one vouching for value 1 (both
/// in the low-bit and flooding value-set payload conventions), the classic
/// King–Saia split. One directive (one budget unit) covers all of a sender's
/// forged links in a round; senders are processed in id order and left
/// honest once the round's corruption budget runs out. Self-delivery is
/// never forged — a process always trusts its own memory.
///
/// Optionally decorates an inner adversary: the inner plan's directives are
/// kept, and senders it crashes/omits/corrupts are skipped (overlap between
/// directive families is outside the model).
class ByzantineAdversary final : public Adversary {
 public:
  explicit ByzantineAdversary(ByzantineOptions opts = {},
                              std::unique_ptr<Adversary> inner = nullptr)
      : opts_(opts), rng_(opts.seed), inner_(std::move(inner)) {}

  void begin(std::uint32_t n, std::uint32_t t_budget) override;
  FaultPlan plan_round(const WorldView& world) override;
  const char* name() const override { return "byzantine"; }

  /// Corruption directives spent so far across the execution.
  std::uint32_t corruptions_spent() const { return corruptions_spent_; }

 private:
  ByzantineOptions opts_;
  Xoshiro256 rng_;
  std::unique_ptr<Adversary> inner_;
  std::uint32_t corruptions_spent_ = 0;
};

struct CoinAttackOptions {
  /// The collective-coin outcome the attacker drives toward.
  Bit target = Bit::One;
  /// Fraction of visible probabilistic-stage coins that must favor `target`
  /// before the attacker stands down for the round. Must lie in (0.5, 1].
  double push_ratio = 0.65;
  /// Seed for victim selection among the disfavored senders.
  std::uint64_t seed = 29;
};

/// Adaptive coin attacker (Haitner & Karidi-Heller shape): each round it
/// reads the realized coin flips straight off the probabilistic-stage
/// payloads (full information), then corrupts senders whose coin came up
/// against `target`, forging a favoring payload to every active receiver,
/// until the visible favored fraction reaches `push_ratio` or the corruption
/// budget runs out. Victims are drawn uniformly from the disfavored senders
/// so repeated runs attack different processes. Deterministic-stage senders
/// are left alone — their messages carry no coin to bias.
class AdaptiveCoinAttacker final : public Adversary {
 public:
  explicit AdaptiveCoinAttacker(CoinAttackOptions opts = {})
      : opts_(opts), rng_(opts.seed) {}

  void begin(std::uint32_t n, std::uint32_t t_budget) override;
  FaultPlan plan_round(const WorldView& world) override;
  const char* name() const override { return "coin-attack"; }

  std::uint32_t corruptions_spent() const { return corruptions_spent_; }

 private:
  CoinAttackOptions opts_;
  Xoshiro256 rng_;
  std::uint32_t corruptions_spent_ = 0;
};

}  // namespace synran
