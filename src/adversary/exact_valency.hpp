// ExactValencyAdversary — the §3.3–3.5 strategy, played literally.
//
// The proof's adversary inspects the valency of every available fault
// action and picks one that keeps the execution bivalent or null-valent;
// reaching a univalent state, it works to swing it back. For tiny systems
// this adversary does exactly that: at every round it enumerates the
// single-crash fault plans (every victim × every delivery mask, plus
// no-crash), queries the exact valency engine for each child state, and
// plays the first action whose child is certainly bivalent or null-valent —
// falling back to the action with the widest swing (max_r − min_r)
// otherwise.
//
// This is exponential in everything and exists for n ≤ 4: it demonstrates,
// with no heuristics anywhere, that the §3 strategy really does keep tiny
// executions undecided until the budget runs out.
#pragma once

#include <cstdint>
#include <vector>

#include "lowerbound/valency.hpp"
#include "sim/adversary.hpp"

namespace synran {

struct ExactValencyAdversaryOptions {
  /// Valency-engine horizon per query.
  std::uint32_t max_depth = 10;
};

class ExactValencyAdversary final : public Adversary {
 public:
  explicit ExactValencyAdversary(ExactValencyAdversaryOptions opts = {})
      : opts_(opts) {}

  void begin(std::uint32_t n, std::uint32_t t_budget) override;
  FaultPlan plan_round(const WorldView& world) override;
  const char* name() const override { return "exact-valency"; }

  /// Class chosen at each round (bitmask per lowerbound/valency.hpp), for
  /// inspection by tests and the E9 bench.
  const std::vector<std::uint8_t>& chosen_classes() const {
    return chosen_classes_;
  }

 private:
  ExactValencyAdversaryOptions opts_;
  std::vector<std::uint8_t> chosen_classes_;
};

}  // namespace synran
