#include "adversary/coinbias.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "net/fabric.hpp"

namespace synran {

void CoinBiasAdversary::begin(std::uint32_t n, std::uint32_t /*t_budget*/) {
  rng_ = Xoshiro256(opts_.seed);
  last_count_.assign(n, n);  // the paper's N^0 = n convention
  crashes_spent_ = 0;
  split_parity_ = false;
}

FaultPlan CoinBiasAdversary::plan_round(const WorldView& world) {
  SYNRAN_REQUIRE(opts_.target_ratio > 0.5 && opts_.target_ratio <= 0.6,
                 "target_ratio must lie in the coin-flip window (0.5, 0.6]");
  const std::uint32_t n = world.n();
  FaultPlan plan;

  // Classify this round's senders by the value their message supports.
  // Deterministic-stage senders are left alone: once the flooding stage is
  // reached, crashes can no longer extend the execution.
  std::vector<ProcessId> one_senders, zero_senders;
  std::uint32_t det_senders = 0, senders = 0;
  for (ProcessId i = 0; i < n; ++i) {
    const auto p = world.payload(i);
    if (!p.has_value()) continue;
    ++senders;
    if (*p & payload::kDeterministicFlag) {
      ++det_senders;
      continue;
    }
    if (payload::supports(*p, Bit::One))
      one_senders.push_back(i);
    else
      zero_senders.push_back(i);
  }

  const std::uint32_t budget = world.round_budget();
  if (budget == 0 || senders == 0 || det_senders == senders) {
    note_deliveries(world, plan);
    return plan;
  }

  // Receiver-side N^{r-1} bounds among processes that will digest this round.
  std::uint32_t np_min = 0, np_max = 0;
  bool first = true;
  for (ProcessId i = 0; i < n; ++i) {
    if (!world.alive().test(i) || world.halted().test(i)) continue;
    const std::uint32_t c = last_count_[i];
    if (first) {
      np_min = np_max = c;
      first = false;
    } else {
      np_min = std::min(np_min, c);
      np_max = std::max(np_max, c);
    }
  }
  if (first) {
    note_deliveries(world, plan);
    return plan;
  }

  const std::uint64_t o = one_senders.size();
  const std::uint64_t z = zero_senders.size();

  const auto empty_crash = [&](ProcessId v) {
    CrashDirective c;
    c.victim = v;
    c.deliver_to = DynBitset(n);  // message reaches nobody
    plan.crashes.push_back(std::move(c));
  };

  if (o == 0 || z == 0) {
    // Unanimity among probabilistic senders: the threshold fight is lost
    // (Lemma 4.1). Optionally stall the STOP rule: it fires only when
    // N^{r-3} − N^r ≤ N^{r-2}/10, so keep the message count collapsing by
    // >10% per 3-round window — Lemma 4.1's "fail 1/10 of the remaining
    // processes every 4 rounds".
    if (opts_.stall_after_unanimity) {
      // The STOP rule compares N^{r-3} − N^r against N^{r-2}/10, and its
      // first firing window spans only two rounds of kills — so beating it
      // needs strictly more than N/20 kills per round.
      const std::uint32_t need = np_min / 20 + 1;
      const std::uint32_t kills = std::min<std::uint32_t>(
          {need, budget, static_cast<std::uint32_t>(o + z)});
      auto& pool = o != 0 ? one_senders : zero_senders;
      for (std::uint32_t k = 0; k < kills; ++k) {
        const std::size_t j = k + rng_.below(pool.size() - k);
        std::swap(pool[k], pool[j]);
        empty_crash(pool[k]);
      }
    }
  } else if (10 * o > 6 * static_cast<std::uint64_t>(np_min)) {
    // 1-surplus: trim the 1-count back into the coin-flip window for most
    // receivers. This is the recurring cost of Lemma 4.6 — the surplus
    // above the mean is Θ(√(p·log p)) with the probability the lemma needs.
    //
    // The trimmed messages are not wasted: they are still delivered to a
    // small receiver group B, which therefore keeps seeing O > 6N/10 and
    // proposes 1 next round. A standing 1-proposer reserve lifts the
    // expected coin count to mid-window, making the expensive 0-collapse
    // (the Z-split below) a large-deviation event instead of a fair-coin
    // one — the same crashes buy far more rounds.
    const auto target = static_cast<std::uint64_t>(
        opts_.target_ratio * static_cast<double>(np_min));
    const std::uint64_t surplus = o > target ? o - target : 0;
    const std::uint32_t kills = static_cast<std::uint32_t>(
        std::min<std::uint64_t>({surplus, budget, o}));
    if (kills > 0) {
      DynBitset reserve(n);
      std::uint32_t tick = split_parity_ ? 0 : 2;  // rotate the group
      for (ProcessId i = 0; i < n; ++i) {
        if (!world.alive().test(i) || world.halted().test(i)) continue;
        if (tick % 5 == 0) reserve.set(i);  // ~20% of receivers
        ++tick;
      }
      split_parity_ = !split_parity_;
      for (std::uint32_t k = 0; k < kills; ++k) {
        const std::size_t j = k + rng_.below(one_senders.size() - k);
        std::swap(one_senders[k], one_senders[j]);
        CrashDirective c;
        c.victim = one_senders[k];
        c.deliver_to = reserve;
        plan.crashes.push_back(std::move(c));
      }
    }
  } else if (10 * o < 5 * static_cast<std::uint64_t>(np_max)) {
    // 0-surplus. Thresholds compare O^r against the *previous* count, so
    // crashing 0-senders cannot raise anyone's ratio — the only lever is the
    // one-side-bias rule itself: hide *all* zeros from half the receivers so
    // that half sees Z=0 and must propose 1. Feasible only when the zero
    // side fits in the budget (the paper's "fail p/2 with probability 1/2").
    if (z <= budget) {
      DynBitset half(n);
      bool tick = split_parity_;
      for (ProcessId i = 0; i < n; ++i) {
        if (!world.alive().test(i) || world.halted().test(i)) continue;
        if (tick) half.set(i);
        tick = !tick;
      }
      split_parity_ = !split_parity_;
      for (ProcessId v : zero_senders) {
        CrashDirective c;
        c.victim = v;
        c.deliver_to = half;
        plan.crashes.push_back(std::move(c));
      }
    }
  }
  // Otherwise every receiver sits inside the coin-flip window already; let
  // the coins fall and pay again next round.

  crashes_spent_ += static_cast<std::uint32_t>(plan.crash_count());
  note_deliveries(world, plan);
  return plan;
}

void CoinBiasAdversary::note_deliveries(const WorldView& world,
                                        const FaultPlan& plan) {
  // Replay the delivery we just allowed so next round's thresholds use the
  // receivers' true N^{r-1}.
  const std::uint32_t n = world.n();
  DynBitset receivers = world.alive();
  for (const auto& c : plan.crashes) receivers.reset(c.victim);
  world.halted().for_each_set([&](std::size_t i) { receivers.reset(i); });

  RoundTraffic traffic{world.payloads(), &plan};
  const auto receipts = deliver(n, traffic, receivers);
  receivers.for_each_set(
      [&](std::size_t i) { last_count_[i] = receipts[i].count; });
}

}  // namespace synran
