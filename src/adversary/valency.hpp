// ValencySamplingAdversary — a direct, simulation-scale rendering of the
// paper's §3 adversary.
//
// The proof's adversary inspects r(α_k) = {Pr[1 | α_k, b] : b ∈ B} and picks
// the action that keeps the execution bivalent or null-valent. Exact r(α) is
// a sup over an exponential strategy space; this adversary substitutes
// Monte-Carlo estimates (documented in DESIGN.md): for each candidate fault
// plan it forks the visible execution (sim/rollout) a few times under a
// neutral continuation and estimates Pr[decide 1]. It then plays the
// candidate whose estimate is closest to 1/2 — i.e. it greedily maximizes
// "bivalence". Candidates mirror the moves the proof uses: do nothing, trim
// k 1-senders, trim k 0-senders, or the Z=0 half-split.
//
// This is far more expensive than CoinBiasAdversary (rollouts per round) and
// is meant for the E5/E9 experiments at moderate n, where it demonstrates
// that valency-steering alone — with no protocol-specific knowledge beyond
// the sender bits — forces the Ω(t/√(n·log n)) behaviour.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "sim/adversary.hpp"

namespace synran {

struct ValencySamplingOptions {
  /// Rollouts per candidate plan.
  std::uint32_t rollouts = 12;
  /// Candidate crash counts are ceil(fraction · √(n·ln n)) for each entry.
  std::vector<double> crash_fractions = {0.5, 1.0, 2.0, 4.0};
  std::uint64_t seed = 13;
  /// Safety cap on rollout length.
  std::uint32_t max_rollout_rounds = 4096;
};

class ValencySamplingAdversary final : public Adversary {
 public:
  explicit ValencySamplingAdversary(ValencySamplingOptions opts = {})
      : opts_(opts), rng_(opts.seed) {}

  void begin(std::uint32_t n, std::uint32_t t_budget) override;
  FaultPlan plan_round(const WorldView& world) override;
  const char* name() const override { return "valency-mc"; }

 private:
  /// Estimated Pr[protocol decides 1] after applying `plan` this round.
  double estimate_p1(const WorldView& world, const FaultPlan& plan);

  ValencySamplingOptions opts_;
  Xoshiro256 rng_;
};

}  // namespace synran
