#include "adversary/nonadaptive.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "protocols/leadercoin.hpp"

namespace synran {

void ObliviousAdversary::begin(std::uint32_t n, std::uint32_t t_budget) {
  SYNRAN_REQUIRE(opts_.horizon >= 1, "horizon must be positive");
  schedule_.clear();
  // Commit now, before seeing anything: t distinct victims at uniform
  // rounds. This is exactly the information pattern of a static adversary.
  Xoshiro256 rng(opts_.seed);
  std::vector<ProcessId> victims(n);
  for (ProcessId i = 0; i < n; ++i) victims[i] = i;
  for (std::uint32_t k = 0; k < t_budget && k < n; ++k) {
    const std::size_t j = k + rng.below(n - k);
    std::swap(victims[k], victims[j]);
    const Round round = 1 + static_cast<Round>(rng.below(opts_.horizon));
    schedule_.emplace_back(round, victims[k]);
  }
  std::sort(schedule_.begin(), schedule_.end());
}

FaultPlan ObliviousAdversary::plan_round(const WorldView& world) {
  FaultPlan plan;
  for (const auto& [round, victim] : schedule_) {
    if (round != world.round()) continue;
    if (!world.sending(victim)) continue;  // wasted entry — by design
    if (plan.crash_count() >= world.round_budget()) break;
    CrashDirective c;
    c.victim = victim;
    c.deliver_to = DynBitset(world.n());
    plan.crashes.push_back(std::move(c));
  }
  return plan;
}

FaultPlan LeaderKillerAdversary::plan_round(const WorldView& world) {
  FaultPlan plan;
  if (world.round_budget() == 0) return plan;
  const ProcessId leader =
      LeaderCoinProcess::leader_of(world.round(), world.n());
  if (!world.sending(leader)) return plan;
  CrashDirective c;
  c.victim = leader;
  c.deliver_to = DynBitset(world.n());
  plan.crashes.push_back(std::move(c));
  return plan;
}

}  // namespace synran
