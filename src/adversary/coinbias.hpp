// CoinBiasAdversary — the executable counterpart of the paper's lower-bound
// adversary (§3), specialized to counted-threshold protocols (SynRan and its
// symmetric ablation).
//
// The paper's adversary keeps the execution bivalent/null-valent by biasing
// each round's collective coin with ≤ 4√(n·ln n)+1 crashes. Evaluating exact
// valencies is infeasible at scale, so this strategy attacks the same
// structural levers the §4 analysis identifies:
//
//   * If this round's 1-count exceeds the 6/10 proposal threshold, crash the
//     surplus 1-senders (hiding their messages entirely) so receivers stay in
//     the coin-flip window — the "expected √(p·log p)/16 kills per block"
//     regime of Lemma 4.6.
//   * If the 1-count falls below the 5/10 threshold (too many zeros), the
//     only counter — because thresholds compare against the *previous*
//     round's count — is the Z=0 rule: crash every 0-sender and deliver
//     their messages to only half of the receivers. The hidden half sees
//     Z=0 and must propose 1, keeping both values alive (the paper's
//     "fail p/2 with probability 1/2" case).
//   * Optionally, once the protocol still reaches unanimity, keep killing
//     >10% of survivors inside the halting rule's window (Lemma 4.1's
//     "must fail 1/10 of the remaining processes every 4 rounds") to stall
//     the STOP rule.
//
// The adversary respects a per-round cap when the engine sets one; with cap
// 4√(n·ln n)+1 it is a member of the paper's adversary class B.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "sim/adversary.hpp"

namespace synran {

struct CoinBiasOptions {
  /// Fraction of N^{r-1} the adversary steers the 1-count toward when
  /// trimming a 1-surplus; must lie strictly inside (0.5, 0.6].
  double target_ratio = 0.55;
  /// Keep stalling via the 10%-kill rule after unanimity is reached.
  bool stall_after_unanimity = true;
  /// Seed for tie-breaking/victim shuffling.
  std::uint64_t seed = 11;
};

class CoinBiasAdversary final : public Adversary {
 public:
  explicit CoinBiasAdversary(CoinBiasOptions opts = {})
      : opts_(opts), rng_(opts.seed) {}

  void begin(std::uint32_t n, std::uint32_t t_budget) override;
  FaultPlan plan_round(const WorldView& world) override;
  const char* name() const override { return "coinbias"; }

  /// Crashes spent so far across the execution (for E8's budget traces).
  std::uint32_t crashes_spent() const { return crashes_spent_; }

 private:
  void note_deliveries(const WorldView& world, const FaultPlan& plan);

  CoinBiasOptions opts_;
  Xoshiro256 rng_;
  /// Predicted N^{r-1} per receiver (the adversary has full information and
  /// replays the deliveries it allowed).
  std::vector<std::uint32_t> last_count_;
  std::uint32_t crashes_spent_ = 0;
  bool split_parity_ = false;  ///< alternates which half gets hidden zeros
};

}  // namespace synran
