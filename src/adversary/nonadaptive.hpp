// The adaptive/non-adaptive contrast of §1.2.
//
// ObliviousAdversary commits to its entire crash schedule before the
// execution starts (it never looks at the WorldView beyond the round
// number) — the weaker adversary model in which [CMS89] achieve O(1)
// expected rounds. LeaderKillerAdversary is the minimal *adaptive* strategy
// that defeats leader-based protocols: it looks up the round's pre-agreed
// leader and silences exactly that process.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "sim/adversary.hpp"

namespace synran {

struct ObliviousOptions {
  /// Crashes are spread uniformly over rounds 1..horizon.
  std::uint32_t horizon = 32;
  std::uint64_t seed = 19;
};

/// Commits to (round, victim) pairs up-front; victims fail silently (empty
/// delivery). Entries for already-dead or non-sending victims are skipped —
/// the oblivious adversary doesn't know who is still alive, so wasted
/// entries are part of its weakness.
class ObliviousAdversary final : public Adversary {
 public:
  explicit ObliviousAdversary(ObliviousOptions opts) : opts_(opts) {}

  void begin(std::uint32_t n, std::uint32_t t_budget) override;
  FaultPlan plan_round(const WorldView& world) override;
  const char* name() const override { return "oblivious"; }

  /// The committed schedule (for tests): schedule()[i] = {round, victim}.
  const std::vector<std::pair<Round, ProcessId>>& schedule() const {
    return schedule_;
  }

 private:
  ObliviousOptions opts_;
  std::vector<std::pair<Round, ProcessId>> schedule_;
};

/// Adaptive anti-leader strategy: each round, crash the round's pre-agreed
/// leader (process (r−1) mod n) with empty delivery, hiding its coin from
/// everyone. One crash per round, ~t rounds of stalling — the cheapest
/// executable witness that adaptivity is what the lower bound feeds on.
class LeaderKillerAdversary final : public Adversary {
 public:
  FaultPlan plan_round(const WorldView& world) override;
  const char* name() const override { return "leader-killer"; }
};

}  // namespace synran
