#include "adversary/omission.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "net/fabric.hpp"

namespace synran {

void ChaosAdversary::begin(std::uint32_t n, std::uint32_t t_budget) {
  SYNRAN_REQUIRE(opts_.drop_rate >= 0.0 && opts_.drop_rate <= 1.0,
                 "drop_rate must lie in [0, 1]");
  rng_ = Xoshiro256(opts_.seed);
  omissions_spent_ = 0;
  if (inner_ != nullptr) inner_->begin(n, t_budget);
}

FaultPlan ChaosAdversary::plan_round(const WorldView& world) {
  FaultPlan plan;
  if (inner_ != nullptr) plan = inner_->plan_round(world);
  std::uint32_t budget = world.omission_round_budget();
  if (budget == 0 || opts_.drop_rate <= 0.0) return plan;

  const std::uint32_t n = world.n();
  DynBitset crashed_now(n);
  for (const auto& c : plan.crashes) crashed_now.set(c.victim);

  for (ProcessId s = 0; s < n && budget > 0; ++s) {
    if (!world.sending(s) || crashed_now.test(s)) continue;
    DynBitset drop(n);
    bool any = false;
    for (ProcessId r = 0; r < n; ++r) {
      if (r == s) continue;  // self-delivery is not a network link
      if (rng_.uniform() < opts_.drop_rate) {
        drop.set(r);
        any = true;
      }
    }
    if (!any) continue;
    OmissionDirective o;
    o.sender = s;
    o.drop_for = std::move(drop);
    plan.omissions.push_back(std::move(o));
    ++omissions_spent_;
    --budget;
  }
  return plan;
}

void OmissionAdversary::begin(std::uint32_t n, std::uint32_t /*t_budget*/) {
  rng_ = Xoshiro256(opts_.seed);
  last_count_.assign(n, n);  // the paper's N^0 = n convention
  omissions_spent_ = 0;
  split_parity_ = false;
}

FaultPlan OmissionAdversary::plan_round(const WorldView& world) {
  SYNRAN_REQUIRE(opts_.target_ratio > 0.5 && opts_.target_ratio <= 0.6,
                 "target_ratio must lie in the coin-flip window (0.5, 0.6]");
  const std::uint32_t n = world.n();
  FaultPlan plan;

  // Classify this round's senders by the value their message supports,
  // exactly as CoinBiasAdversary does. Deterministic-stage senders are left
  // alone: once the flooding stage is reached, hiding messages can no longer
  // extend the execution.
  std::vector<ProcessId> one_senders, zero_senders;
  std::uint32_t det_senders = 0, senders = 0;
  for (ProcessId i = 0; i < n; ++i) {
    const auto p = world.payload(i);
    if (!p.has_value()) continue;
    ++senders;
    if (*p & payload::kDeterministicFlag) {
      ++det_senders;
      continue;
    }
    if (payload::supports(*p, Bit::One))
      one_senders.push_back(i);
    else
      zero_senders.push_back(i);
  }

  const std::uint32_t budget = world.omission_round_budget();
  if (budget == 0 || senders == 0 || det_senders == senders) {
    note_deliveries(world, plan);
    return plan;
  }

  // Receiver-side N^{r-1} bounds among processes that will digest this round.
  std::uint32_t np_min = 0, np_max = 0;
  bool first = true;
  for (ProcessId i = 0; i < n; ++i) {
    if (!world.alive().test(i) || world.halted().test(i)) continue;
    const std::uint32_t c = last_count_[i];
    if (first) {
      np_min = np_max = c;
      first = false;
    } else {
      np_min = std::min(np_min, c);
      np_max = std::max(np_max, c);
    }
  }
  if (first) {
    note_deliveries(world, plan);
    return plan;
  }

  const std::uint64_t o = one_senders.size();
  const std::uint64_t z = zero_senders.size();

  if (o != 0 && z != 0 && 10 * o > 6 * static_cast<std::uint64_t>(np_min)) {
    // 1-surplus: suppress the surplus 1-senders for most receivers so the
    // visible 1-count falls back into the coin-flip window. A ~20% reserve
    // group keeps seeing them (and re-proposes 1 next round) — the same
    // standing-reserve trick as CoinBias, minus the corpses.
    const auto target = static_cast<std::uint64_t>(
        opts_.target_ratio * static_cast<double>(np_min));
    const std::uint64_t surplus = o > target ? o - target : 0;
    const std::uint32_t hides = static_cast<std::uint32_t>(
        std::min<std::uint64_t>({surplus, budget, o}));
    if (hides > 0) {
      DynBitset hidden_from(n);  // everyone except the reserve group
      std::uint32_t tick = split_parity_ ? 0 : 2;  // rotate the group
      for (ProcessId i = 0; i < n; ++i) {
        if (!world.alive().test(i) || world.halted().test(i)) continue;
        if (tick % 5 != 0) hidden_from.set(i);  // reserve keeps ~20%
        ++tick;
      }
      split_parity_ = !split_parity_;
      for (std::uint32_t k = 0; k < hides; ++k) {
        const std::size_t j = k + rng_.below(one_senders.size() - k);
        std::swap(one_senders[k], one_senders[j]);
        OmissionDirective d;
        d.sender = one_senders[k];
        d.drop_for = hidden_from;
        plan.omissions.push_back(std::move(d));
      }
    }
  } else if (o != 0 && z != 0 &&
             10 * o < 5 * static_cast<std::uint64_t>(np_max)) {
    // 0-surplus: thresholds compare against the *previous* round's count, so
    // the only lever is the Z=0 split — hide every zero-sender from half the
    // receivers, who then must propose 1. Feasible only when the zero side
    // fits in this round's omission budget.
    if (z <= budget) {
      DynBitset half(n);
      bool tick = split_parity_;
      for (ProcessId i = 0; i < n; ++i) {
        if (!world.alive().test(i) || world.halted().test(i)) continue;
        if (tick) half.set(i);
        tick = !tick;
      }
      split_parity_ = !split_parity_;
      for (ProcessId v : zero_senders) {
        OmissionDirective d;
        d.sender = v;
        d.drop_for = half;
        plan.omissions.push_back(std::move(d));
      }
    }
  }
  // Unanimity among probabilistic senders is a lost cause for a pure
  // omission attacker: the STOP rule watches the *message count*, which
  // omissions can only dent for one round at a time. Stand down.

  omissions_spent_ += static_cast<std::uint32_t>(plan.omission_count());
  note_deliveries(world, plan);
  return plan;
}

void OmissionAdversary::note_deliveries(const WorldView& world,
                                        const FaultPlan& plan) {
  // Replay the delivery we just allowed (omissions included) so next round's
  // thresholds use the receivers' true N^{r-1}.
  const std::uint32_t n = world.n();
  DynBitset receivers = world.alive();
  world.halted().for_each_set([&](std::size_t i) { receivers.reset(i); });

  RoundTraffic traffic{world.payloads(), &plan};
  const auto receipts = deliver(n, traffic, receivers);
  receivers.for_each_set(
      [&](std::size_t i) { last_count_[i] = receipts[i].count; });
}

}  // namespace synran
