#include "adversary/byzantine.hpp"

#include <vector>

#include "common/check.hpp"

namespace synran {

namespace {

/// Forged camp payloads. The low bit vouches for the value in the shared
/// low-two-bit convention; bit (8 + v) vouches for value v in the flooding
/// value-set convention of k-FloodMin, so one forgery poisons both protocol
/// families at once.
constexpr Payload kForgeValue0 = payload::kSupports0 | (Payload{1} << 8);
constexpr Payload kForgeValue1 = payload::kSupports1 | (Payload{2} << 8);

}  // namespace

void ByzantineAdversary::begin(std::uint32_t n, std::uint32_t t_budget) {
  SYNRAN_REQUIRE(opts_.corrupt_rate >= 0.0 && opts_.corrupt_rate <= 1.0,
                 "corrupt_rate must lie in [0, 1]");
  rng_ = Xoshiro256(opts_.seed);
  corruptions_spent_ = 0;
  if (inner_ != nullptr) inner_->begin(n, t_budget);
}

FaultPlan ByzantineAdversary::plan_round(const WorldView& world) {
  FaultPlan plan;
  if (inner_ != nullptr) plan = inner_->plan_round(world);
  std::uint32_t budget = world.corruption_round_budget();
  if (budget == 0 || opts_.corrupt_rate <= 0.0) return plan;

  const std::uint32_t n = world.n();
  // A sender may appear in at most one directive family per plan, so skip
  // everyone the inner adversary already touched.
  DynBitset taken(n);
  for (const auto& c : plan.crashes) taken.set(c.victim);
  for (const auto& o : plan.omissions) taken.set(o.sender);
  for (const auto& cd : plan.corruptions) taken.set(cd.sender);

  for (ProcessId s = 0; s < n && budget > 0; ++s) {
    if (!world.sending(s) || taken.test(s)) continue;
    if (rng_.uniform() >= opts_.corrupt_rate) continue;
    CorruptionDirective cd;
    cd.sender = s;
    bool camp_one = false;
    for (ProcessId r = 0; r < n; ++r) {
      if (r == s) continue;  // a process always trusts its own memory
      if (!world.alive().test(r) || world.halted().test(r)) continue;
      cd.forgeries.push_back(
          {r, camp_one ? kForgeValue1 : kForgeValue0});
      camp_one = !camp_one;
    }
    if (cd.forgeries.empty()) continue;
    plan.corruptions.push_back(std::move(cd));
    ++corruptions_spent_;
    --budget;
  }
  return plan;
}

void AdaptiveCoinAttacker::begin(std::uint32_t /*n*/,
                                 std::uint32_t /*t_budget*/) {
  SYNRAN_REQUIRE(opts_.push_ratio > 0.5 && opts_.push_ratio <= 1.0,
                 "push_ratio must lie in (0.5, 1]");
  rng_ = Xoshiro256(opts_.seed);
  corruptions_spent_ = 0;
}

FaultPlan AdaptiveCoinAttacker::plan_round(const WorldView& world) {
  FaultPlan plan;
  std::uint32_t budget = world.corruption_round_budget();
  if (budget == 0) return plan;

  const std::uint32_t n = world.n();
  const Bit target = opts_.target;
  const Bit other = target == Bit::One ? Bit::Zero : Bit::One;

  // Read this round's realized coins off the probabilistic-stage payloads:
  // a sender favors the target when its message supports it, and is a
  // corruption victim candidate when it supports only the other value.
  std::vector<ProcessId> disfavored;
  std::uint64_t favored = 0;
  for (ProcessId i = 0; i < n; ++i) {
    const auto p = world.payload(i);
    if (!p.has_value()) continue;
    if (*p & payload::kDeterministicFlag) continue;  // no coin to bias
    if (payload::supports(*p, target)) {
      ++favored;
    } else if (payload::supports(*p, other)) {
      disfavored.push_back(i);
    }
  }
  if (disfavored.empty()) return plan;

  // Everyone who will digest this round sees the forged coins.
  DynBitset active = world.alive();
  world.halted().for_each_set([&](std::size_t i) { active.reset(i); });

  const Payload forged = target == Bit::One ? kForgeValue1 : kForgeValue0;
  std::uint64_t visible = favored + disfavored.size();
  std::size_t flipped = 0;
  while (budget > 0 && flipped < disfavored.size()) {
    if (static_cast<double>(favored) >=
        opts_.push_ratio * static_cast<double>(visible)) {
      break;  // the collective coin already leans our way
    }
    const std::size_t j = flipped + rng_.below(disfavored.size() - flipped);
    std::swap(disfavored[flipped], disfavored[j]);
    const ProcessId victim = disfavored[flipped];
    CorruptionDirective cd;
    cd.sender = victim;
    for (ProcessId r = 0; r < n; ++r) {
      if (r == victim || !active.test(r)) continue;
      cd.forgeries.push_back({r, forged});
    }
    if (cd.forgeries.empty()) break;  // nobody left to deceive
    plan.corruptions.push_back(std::move(cd));
    ++corruptions_spent_;
    ++favored;  // the victim's visible coin now favors the target
    ++flipped;
    --budget;
  }
  return plan;
}

}  // namespace synran
