#include "adversary/basic.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace synran {

FaultPlan StaticCrashAdversary::plan_round(const WorldView& world) {
  FaultPlan plan;
  std::uint32_t budget = world.round_budget();
  for (const auto& e : schedule_) {
    if (e.round != world.round()) continue;
    if (budget == 0) break;
    if (!world.sending(e.victim)) continue;  // dead or halted — nothing to cut
    CrashDirective c;
    c.victim = e.victim;
    c.deliver_to = DynBitset(world.n());
    for (ProcessId r : e.deliver_to) {
      SYNRAN_REQUIRE(r < world.n(), "deliver_to recipient out of range");
      c.deliver_to.set(r);
    }
    plan.crashes.push_back(std::move(c));
    --budget;
  }
  return plan;
}

void RandomCrashAdversary::begin(std::uint32_t /*n*/,
                                 std::uint32_t /*t_budget*/) {
  rng_ = Xoshiro256(opts_.seed);
}

FaultPlan RandomCrashAdversary::plan_round(const WorldView& world) {
  FaultPlan plan;
  if (world.round_budget() == 0) return plan;
  if (rng_.uniform() >= opts_.activity) return plan;

  std::vector<ProcessId> senders;
  for (ProcessId i = 0; i < world.n(); ++i)
    if (world.sending(i)) senders.push_back(i);
  if (senders.empty()) return plan;

  const std::uint32_t want = 1 + static_cast<std::uint32_t>(rng_.below(
                                     std::max<std::uint32_t>(
                                         1, opts_.max_per_round)));
  const std::uint32_t count = std::min<std::uint32_t>(
      {want, world.round_budget(),
       static_cast<std::uint32_t>(senders.size())});

  // Partial Fisher-Yates to pick `count` distinct victims.
  for (std::uint32_t k = 0; k < count; ++k) {
    const std::size_t j = k + rng_.below(senders.size() - k);
    std::swap(senders[k], senders[j]);
  }

  for (std::uint32_t k = 0; k < count; ++k) {
    CrashDirective c;
    c.victim = senders[k];
    c.deliver_to = DynBitset(world.n());
    for (ProcessId r = 0; r < world.n(); ++r)
      if (rng_.flip()) c.deliver_to.set(r);
    plan.crashes.push_back(std::move(c));
  }
  return plan;
}

void ChainHidingAdversary::begin(std::uint32_t n, std::uint32_t /*t_budget*/) {
  was_holder_.assign(n, false);
}

FaultPlan ChainHidingAdversary::plan_round(const WorldView& world) {
  FaultPlan plan;
  if (world.round_budget() == 0) return plan;

  // The current sole holder of value 0 (estimate Zero) that is still
  // sending; if several exist the hiding already failed — stop interfering.
  ProcessId holder = world.n();
  std::uint32_t zero_holders = 0;
  for (ProcessId i = 0; i < world.n(); ++i) {
    if (!world.sending(i)) continue;
    if (world.process(i).view().estimate == Bit::Zero) {
      ++zero_holders;
      holder = i;
    }
  }
  if (zero_holders != 1) return plan;

  // Successor: a fresh process that never held 0 yet.
  ProcessId successor = world.n();
  for (ProcessId i = 0; i < world.n(); ++i) {
    if (i == holder || !world.sending(i)) continue;
    if (!was_holder_[i]) {
      successor = i;
      break;
    }
  }
  if (successor == world.n()) return plan;  // nobody left to pass 0 to

  CrashDirective c;
  c.victim = holder;
  c.deliver_to = DynBitset(world.n());
  c.deliver_to.set(successor);
  was_holder_[holder] = true;
  plan.crashes.push_back(std::move(c));
  return plan;
}

}  // namespace synran
