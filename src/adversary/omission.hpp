// Omission-fault injectors: a seeded link-drop chaos monkey and a targeted
// threshold attacker, both spending the engine's omission budget
// (EngineOptions::omission_budget) instead of crashes.
//
// Omissions are a deliberate extension beyond the paper's fail-stop model
// (§3.1): a directive suppresses one live sender's round message for a chosen
// receiver subset without killing the sender, the classic send-omission
// failure of the general-omission literature. The graceful-degradation study
// (experiment E15) uses these adversaries to measure how SynRan's agreement
// probability and expected round count decay as the per-link drop rate grows.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "sim/adversary.hpp"

namespace synran {

struct ChaosOptions {
  /// Per-link drop probability: each (sender, receiver ≠ sender) link fails
  /// independently with this probability, every round. Must lie in [0, 1].
  double drop_rate = 0.1;
  /// Seed for the link coins. Bit-reproducible: the same seed and world
  /// evolution produce the same drops at any --threads count (batches hand
  /// every repetition its own derived seed).
  std::uint64_t seed = 17;
};

/// Drops each point-to-point link independently with probability
/// `drop_rate`, bounded by the omission budget the engine grants. One
/// directive (one budget unit) covers all of a sender's dropped links in a
/// round; senders are processed in id order and the remainder are left
/// intact once the round's omission budget runs out. Self-delivery is never
/// dropped — a process always hears itself; chaos models network links.
///
/// Optionally decorates an inner adversary: the inner plan's crashes are
/// kept, and senders it crashes are skipped (a crash's deliver_to already
/// fixes their delivery; crash+omit overlap is outside the model).
class ChaosAdversary final : public Adversary {
 public:
  explicit ChaosAdversary(ChaosOptions opts = {},
                          std::unique_ptr<Adversary> inner = nullptr)
      : opts_(opts), rng_(opts.seed), inner_(std::move(inner)) {}

  void begin(std::uint32_t n, std::uint32_t t_budget) override;
  FaultPlan plan_round(const WorldView& world) override;
  const char* name() const override { return "chaos"; }

  /// Omission directives spent so far across the execution.
  std::uint32_t omissions_spent() const { return omissions_spent_; }

 private:
  ChaosOptions opts_;
  Xoshiro256 rng_;
  std::unique_ptr<Adversary> inner_;
  std::uint32_t omissions_spent_ = 0;
};

struct OmissionAttackOptions {
  /// Fraction of N^{r-1} the attacker steers the visible 1-count toward when
  /// trimming a 1-surplus; must lie strictly inside (0.5, 0.6].
  double target_ratio = 0.55;
  /// Seed for victim shuffling.
  std::uint64_t seed = 13;
};

/// The omission-only mirror of CoinBiasAdversary: it attacks SynRan's
/// counted-threshold margins without killing anyone, so the same process
/// set stays alive while the information flow degrades.
///
///   * 1-surplus (visible 1-count above the 6/10 proposal threshold):
///     suppress the surplus 1-senders for most receivers, keeping a ~20%
///     reserve group that still sees them and re-proposes 1 next round.
///   * 0-surplus (1-count below the 5/10 threshold): hide *all* zero-senders
///     from half the receivers — the Z=0 split of the paper's one-side-bias
///     rule, here without spending a single crash.
///
/// Deterministic-stage senders are left alone, mirroring CoinBias. Every
/// directive costs one unit of the omission budget; the attacker stands down
/// when the budget (or the per-round cap) is exhausted.
class OmissionAdversary final : public Adversary {
 public:
  explicit OmissionAdversary(OmissionAttackOptions opts = {})
      : opts_(opts), rng_(opts.seed) {}

  void begin(std::uint32_t n, std::uint32_t t_budget) override;
  FaultPlan plan_round(const WorldView& world) override;
  const char* name() const override { return "omission"; }

  std::uint32_t omissions_spent() const { return omissions_spent_; }

 private:
  void note_deliveries(const WorldView& world, const FaultPlan& plan);

  OmissionAttackOptions opts_;
  Xoshiro256 rng_;
  /// Predicted N^{r-1} per receiver (full information: the adversary replays
  /// the deliveries it allowed, omissions included).
  std::vector<std::uint32_t> last_count_;
  std::uint32_t omissions_spent_ = 0;
  bool split_parity_ = false;  ///< alternates which half gets hidden zeros
};

}  // namespace synran
