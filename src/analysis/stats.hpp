// Summary statistics and confidence intervals for experiment reporting.
#pragma once

#include <cstddef>
#include <vector>

namespace synran {

/// Online accumulator (Welford) for mean/variance; numerically stable.
class Summary {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Unbiased sample variance; 0 for n < 2.
  double variance() const;
  double stddev() const;
  /// Standard error of the mean; 0 for n < 2.
  double stderr_mean() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(n_); }
  /// Raw Welford sum of squared deviations. Exposed so checkpoints can
  /// snapshot the accumulator's exact state: (count, mean, m2, min, max)
  /// determines every derived statistic bit-for-bit, whereas round-tripping
  /// through stddev() would lose the low bits of m2.
  double m2() const { return m2_; }

  /// Rebuilds an accumulator from a snapshot taken via the accessors above.
  /// The restored object is indistinguishable from the original: further
  /// add()/merge() calls and every derived statistic behave identically.
  static Summary restore(std::size_t count, double mean, double m2, double min,
                         double max);

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const Summary& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Two-sided interval [lo, hi].
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
  bool contains(double x) const { return lo <= x && x <= hi; }
};

/// Wilson score interval for a binomial proportion with `successes` out of
/// `trials`, at confidence given by normal quantile `z` (1.96 ≈ 95%).
Interval wilson_interval(std::size_t successes, std::size_t trials,
                         double z = 1.96);

/// Normal-approximation CI for the mean of `s` (mean ± z·stderr).
Interval mean_interval(const Summary& s, double z = 1.96);

/// q-th quantile (0 ≤ q ≤ 1) of a sample, by linear interpolation.
/// Sorts a copy; intended for reporting, not hot paths.
double quantile(std::vector<double> xs, double q);

}  // namespace synran
