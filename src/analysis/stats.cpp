#include "analysis/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace synran {

void Summary::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Summary::mean() const { return n_ ? mean_ : 0.0; }

double Summary::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Summary::stddev() const { return std::sqrt(variance()); }

double Summary::stderr_mean() const {
  return n_ > 1 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

Summary Summary::restore(std::size_t count, double mean, double m2, double min,
                         double max) {
  SYNRAN_REQUIRE(m2 >= 0.0, "Summary::restore: m2 must be non-negative");
  SYNRAN_REQUIRE(count > 0 || (mean == 0.0 && m2 == 0.0),
                 "Summary::restore: empty summary must have zero state");
  Summary s;
  s.n_ = count;
  s.mean_ = mean;
  s.m2_ = m2;
  s.min_ = min;
  s.max_ = max;
  return s;
}

void Summary::merge(const Summary& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(o.n_);
  const double delta = o.mean_ - mean_;
  const double nt = na + nb;
  m2_ += o.m2_ + delta * delta * na * nb / nt;
  mean_ += delta * nb / nt;
  n_ += o.n_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

Interval wilson_interval(std::size_t successes, std::size_t trials, double z) {
  SYNRAN_REQUIRE(trials > 0, "wilson_interval needs trials > 0");
  SYNRAN_REQUIRE(successes <= trials, "successes exceed trials");
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

Interval mean_interval(const Summary& s, double z) {
  const double half = z * s.stderr_mean();
  return {s.mean() - half, s.mean() + half};
}

double quantile(std::vector<double> xs, double q) {
  SYNRAN_REQUIRE(!xs.empty(), "quantile of empty sample");
  SYNRAN_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q outside [0,1]");
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace synran
