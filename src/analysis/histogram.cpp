#include "analysis/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>

#include "common/check.hpp"

namespace synran {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bins)) {
  SYNRAN_REQUIRE(hi > lo, "histogram range must be non-empty");
  SYNRAN_REQUIRE(bins >= 1, "histogram needs at least one bin");
  counts_.assign(bins, 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto i = static_cast<std::size_t>((x - lo_) / bin_width_);
  if (i >= counts_.size()) i = counts_.size() - 1;  // float edge case
  ++counts_[i];
}

std::size_t Histogram::bin_count(std::size_t i) const {
  SYNRAN_REQUIRE(i < counts_.size(), "bin index out of range");
  return counts_[i];
}

double Histogram::tail_at_least(double x) const {
  if (total_ == 0) return 0.0;
  std::size_t acc = overflow_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double edge = lo_ + static_cast<double>(i) * bin_width_;
    if (edge >= x) acc += counts_[i];
  }
  if (x <= lo_) acc += underflow_;
  return static_cast<double>(acc) / static_cast<double>(total_);
}

double Histogram::quantile(double q) const {
  SYNRAN_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q outside [0,1]");
  if (total_ == 0) return lo_;
  const auto target = static_cast<double>(total_) * q;
  double acc = static_cast<double>(underflow_);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    acc += static_cast<double>(counts_[i]);
    if (acc >= target)
      return lo_ + static_cast<double>(i + 1) * bin_width_;
  }
  return hi_;
}

void Histogram::print(std::ostream& os, std::size_t width) const {
  std::size_t peak = std::max<std::size_t>(
      {std::size_t{1}, underflow_, overflow_,
       *std::max_element(counts_.begin(), counts_.end())});
  const auto bar = [&](std::size_t c) {
    const auto len = static_cast<std::size_t>(
        std::llround(static_cast<double>(c) / static_cast<double>(peak) *
                     static_cast<double>(width)));
    return std::string(len, '#');
  };
  if (underflow_ > 0)
    os << "      < " << std::setw(8) << lo_ << " | " << bar(underflow_)
       << ' ' << underflow_ << '\n';
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double edge = lo_ + static_cast<double>(i) * bin_width_;
    os << std::setw(8) << edge << "-" << std::setw(8) << edge + bin_width_
       << " | " << bar(counts_[i]) << ' ' << counts_[i] << '\n';
  }
  if (overflow_ > 0)
    os << "     >= " << std::setw(8) << hi_ << " | " << bar(overflow_) << ' '
       << overflow_ << '\n';
}

}  // namespace synran
