#include "analysis/theory.hpp"

#include <cmath>

#include "common/check.hpp"

namespace synran::theory {

namespace {
constexpr double kLn2 = 0.6931471805599453;
}

double tight_round_bound(double n, double t) {
  SYNRAN_REQUIRE(n >= 1.0, "n must be >= 1");
  SYNRAN_REQUIRE(t >= 0.0, "t must be >= 0");
  const double lg = std::log(2.0 + t / std::sqrt(n));
  return t / std::sqrt(n * lg);
}

double lower_bound_rounds(double n, double t) {
  SYNRAN_REQUIRE(n >= 1.0, "n must be >= 1");
  const double lg = std::max(kLn2, std::log(n));
  return t / std::sqrt(n * lg);
}

double sqrt_n_over_log_n(double n) {
  SYNRAN_REQUIRE(n >= 1.0, "n must be >= 1");
  const double lg = std::max(kLn2, std::log(n));
  return std::sqrt(n / lg);
}

double per_round_budget(double n) {
  SYNRAN_REQUIRE(n >= 1.0, "n must be >= 1");
  const double lg = std::max(kLn2, std::log(n));
  return 4.0 * std::sqrt(n * lg) + 1.0;
}

double per_round_budget_general(double n, double t) {
  SYNRAN_REQUIRE(n >= 1.0, "n must be >= 1");
  const double lg = std::log(2.0 + t / std::sqrt(n));
  return 4.0 * std::sqrt(n * lg) + 1.0;
}

double deterministic_stage_threshold(double n) {
  SYNRAN_REQUIRE(n >= 1.0, "n must be >= 1");
  const double lg = std::max(kLn2, std::log(n));
  return std::max(1.0, std::sqrt(n / lg));
}

std::size_t deterministic_stage_rounds(double n) {
  return static_cast<std::size_t>(
             std::ceil(deterministic_stage_threshold(n))) +
         1;
}

double valency_epsilon(double n, double k) {
  SYNRAN_REQUIRE(n >= 1.0, "n must be >= 1");
  const double eps = 1.0 / std::sqrt(n) - k / n;
  return eps > 0.0 ? eps : 0.0;
}

}  // namespace synran::theory
