// Least-squares helpers for comparing measured curves to the paper's
// theoretical shapes: we never expect to match absolute constants, only the
// functional form, so experiments fit a single scale factor and report fit
// quality plus per-point ratios.
#pragma once

#include <span>
#include <vector>

namespace synran {

/// Result of fitting y ≈ c · f where f is a reference curve.
struct ScaleFit {
  double scale = 0.0;  ///< least-squares c
  double r2 = 0.0;     ///< coefficient of determination of c·f vs y
  /// y_i / f_i per point (how far each point sits from proportionality);
  /// a flat ratio sequence means the shape matches.
  std::vector<double> ratios;
  double ratio_spread() const;  ///< max ratio / min ratio (1.0 = perfect)
};

/// Fits the single multiplicative constant minimizing Σ (y_i − c·f_i)².
/// Points with f_i == 0 contribute nothing to the fit and get ratio 0.
ScaleFit fit_scale(std::span<const double> f, std::span<const double> y);

/// Ordinary least squares slope/intercept of y on x, for linearity checks.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;
};
LinearFit fit_linear(std::span<const double> x, std::span<const double> y);

}  // namespace synran
