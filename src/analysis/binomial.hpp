// Exact binomial machinery and the paper's deviation bounds.
//
// Lemma 4.4 of the paper gives the non-asymptotic lower-deviation bound
//   Pr(x − E(x) ≥ t√n) ≥ e^{−4(t+1)²} / √(2π)     (t < √n/8, fair coins)
// and Corollary 4.5 instantiates t = √(log n)/8. These functions compute the
// exact tail (via log-space summation) so the bound can be validated.
#pragma once

#include <cstdint>

namespace synran {

/// ln C(n, k); exact via lgamma. Requires 0 ≤ k ≤ n.
double log_binomial(std::uint64_t n, std::uint64_t k);

/// Pr(X = k) for X ~ Binomial(n, p), computed in log space.
double binomial_pmf(std::uint64_t n, std::uint64_t k, double p);

/// Pr(X ≥ k) for X ~ Binomial(n, p). Exact summation; O(n−k) terms.
double binomial_upper_tail(std::uint64_t n, std::uint64_t k, double p);

/// Pr(X ≤ k) for X ~ Binomial(n, p). Exact summation; O(k) terms.
double binomial_lower_tail(std::uint64_t n, std::uint64_t k, double p);

/// The paper's Lemma 4.4 lower bound on Pr(x − n/2 ≥ t√n) for fair coins:
/// e^{−4(t+1)²}/√(2π). Valid for 0 ≤ t < √n/8.
double lemma44_lower_bound(double t);

/// Standard Hoeffding upper bound Pr(x − n/2 ≥ a) ≤ e^{−2a²/n}, for contrast.
double hoeffding_upper_bound(double n, double a);

/// Schechtman: for A with Pr(A) = alpha, l₀ = 2√(n·ln(1/alpha)).
double schechtman_l0(double n, double alpha);

/// Schechtman expansion bound: Pr(B(A,l)) ≥ 1 − e^{−(l−l₀)²/4n}, for l ≥ l₀.
/// Returns 0 when l < l₀ (bound vacuous).
double schechtman_expansion_bound(double n, double alpha, double l);

}  // namespace synran
