// Fixed-bin histogram for round-count and crash-count distributions.
//
// The paper's Theorem 1 is a with-high-probability statement, so experiment
// tables report distribution tails, not just means; this keeps the binning
// logic in one place.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace synran {

class Histogram {
 public:
  /// `lo` inclusive, `hi` exclusive, split into `bins` equal bins. Samples
  /// outside the range land in saturating under/overflow bins.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t count() const { return total_; }

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  std::size_t bins() const { return counts_.size(); }
  std::size_t bin_count(std::size_t i) const;
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }

  /// Empirical Pr(X >= x) including the overflow mass.
  double tail_at_least(double x) const;
  /// Smallest bin upper edge e with Pr(X <= e) >= q; returns hi() if the
  /// quantile sits in the overflow bin.
  double quantile(double q) const;

  /// Renders a compact ASCII bar chart, one line per non-empty bin.
  void print(std::ostream& os, std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace synran
