#include "analysis/fit.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace synran {

double ScaleFit::ratio_spread() const {
  double lo = 0.0, hi = 0.0;
  bool first = true;
  for (double r : ratios) {
    if (r == 0.0) continue;
    if (first) {
      lo = hi = r;
      first = false;
    } else {
      lo = std::min(lo, r);
      hi = std::max(hi, r);
    }
  }
  if (first || lo == 0.0) return 0.0;
  return hi / lo;
}

ScaleFit fit_scale(std::span<const double> f, std::span<const double> y) {
  SYNRAN_REQUIRE(f.size() == y.size(), "fit_scale: size mismatch");
  SYNRAN_REQUIRE(!f.empty(), "fit_scale: empty input");
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < f.size(); ++i) {
    num += f[i] * y[i];
    den += f[i] * f[i];
  }
  ScaleFit out;
  out.scale = den > 0.0 ? num / den : 0.0;

  double ybar = 0.0;
  for (double v : y) ybar += v;
  ybar /= static_cast<double>(y.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < f.size(); ++i) {
    const double pred = out.scale * f[i];
    ss_res += (y[i] - pred) * (y[i] - pred);
    ss_tot += (y[i] - ybar) * (y[i] - ybar);
  }
  out.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : (ss_res == 0.0 ? 1.0 : 0.0);

  out.ratios.reserve(f.size());
  for (std::size_t i = 0; i < f.size(); ++i)
    out.ratios.push_back(f[i] != 0.0 ? y[i] / f[i] : 0.0);
  return out;
}

LinearFit fit_linear(std::span<const double> x, std::span<const double> y) {
  SYNRAN_REQUIRE(x.size() == y.size(), "fit_linear: size mismatch");
  SYNRAN_REQUIRE(x.size() >= 2, "fit_linear: need at least 2 points");
  const double n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  LinearFit out;
  const double den = n * sxx - sx * sx;
  SYNRAN_REQUIRE(den != 0.0, "fit_linear: degenerate x values");
  out.slope = (n * sxy - sx * sy) / den;
  out.intercept = (sy - out.slope * sx) / n;

  const double ybar = sy / n;
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double pred = out.slope * x[i] + out.intercept;
    ss_res += (y[i] - pred) * (y[i] - pred);
    ss_tot += (y[i] - ybar) * (y[i] - ybar);
  }
  out.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : (ss_res == 0.0 ? 1.0 : 0.0);
  return out;
}

}  // namespace synran
