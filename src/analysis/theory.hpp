// The paper's theoretical quantities, used as reference curves in benches and
// as budgets inside adversaries.
#pragma once

#include <cstddef>

namespace synran::theory {

/// The tight bound of Theorem 3: f(n,t) = t / √(n · ln(2 + t/√n)).
/// This is the expected-round curve up to a constant factor.
double tight_round_bound(double n, double t);

/// The lower-bound forced-round curve of Theorem 1: t / √(n · ln n)
/// (ln guarded below by ln 2 so tiny n stay meaningful).
double lower_bound_rounds(double n, double t);

/// For t = Θ(n): √(n / ln n) (Corollary 3.6 and the upper-bound analysis).
double sqrt_n_over_log_n(double n);

/// The per-round failure allowance of the lower-bound adversary class B:
/// 4√(n·ln n) + 1 (§3.2).
double per_round_budget(double n);

/// The per-round budget generalised for small t via the paper's final remark:
/// replaces ln n by ln(2 + t/√n).
double per_round_budget_general(double n, double t);

/// The deterministic-stage entry threshold of SynRan: √(n / ln n), i.e. the
/// protocol hands off when fewer than this many messages arrive. Guarded so
/// that n ≥ 1 always yields a value ≥ 1.
double deterministic_stage_threshold(double n);

/// Number of deterministic-stage rounds SynRan runs: ⌈√(n/ln n)⌉ + 1
/// (the +1 makes the flooding stage tolerate every possible crash pattern
/// among the < √(n/ln n) survivors).
std::size_t deterministic_stage_rounds(double n);

/// The valency-classification margin ε_k = 1/√n − k/n from the §3.2 table.
/// Clamped at 0 once k/n exceeds 1/√n (the classification degenerates, which
/// the paper tolerates because k ≤ t ≤ n keeps the horizon short).
double valency_epsilon(double n, double k);

}  // namespace synran::theory
