#include "analysis/binomial.hpp"

#include <cmath>

#include "common/check.hpp"

namespace synran {

double log_binomial(std::uint64_t n, std::uint64_t k) {
  SYNRAN_REQUIRE(k <= n, "log_binomial requires k <= n");
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

double binomial_pmf(std::uint64_t n, std::uint64_t k, double p) {
  SYNRAN_REQUIRE(p >= 0.0 && p <= 1.0, "p outside [0,1]");
  if (k > n) return 0.0;
  if (p == 0.0) return k == 0 ? 1.0 : 0.0;
  if (p == 1.0) return k == n ? 1.0 : 0.0;
  const double lp = log_binomial(n, k) + static_cast<double>(k) * std::log(p) +
                    static_cast<double>(n - k) * std::log1p(-p);
  return std::exp(lp);
}

double binomial_upper_tail(std::uint64_t n, std::uint64_t k, double p) {
  if (k == 0) return 1.0;
  if (k > n) return 0.0;
  // Sum the smaller side for accuracy.
  if (static_cast<double>(k) <= p * static_cast<double>(n)) {
    return 1.0 - binomial_lower_tail(n, k - 1, p);
  }
  double acc = 0.0;
  for (std::uint64_t i = k; i <= n; ++i) acc += binomial_pmf(n, i, p);
  return acc < 1.0 ? acc : 1.0;
}

double binomial_lower_tail(std::uint64_t n, std::uint64_t k, double p) {
  if (k >= n) return 1.0;
  if (static_cast<double>(k) >= p * static_cast<double>(n)) {
    double upper = 0.0;
    for (std::uint64_t i = k + 1; i <= n; ++i) upper += binomial_pmf(n, i, p);
    const double acc = 1.0 - upper;
    return acc > 0.0 ? acc : 0.0;
  }
  double acc = 0.0;
  for (std::uint64_t i = 0; i <= k; ++i) acc += binomial_pmf(n, i, p);
  return acc < 1.0 ? acc : 1.0;
}

double lemma44_lower_bound(double t) {
  SYNRAN_REQUIRE(t >= 0.0, "t must be non-negative");
  return std::exp(-4.0 * (t + 1.0) * (t + 1.0)) / std::sqrt(2.0 * M_PI);
}

double hoeffding_upper_bound(double n, double a) {
  SYNRAN_REQUIRE(n > 0.0, "n must be positive");
  return std::exp(-2.0 * a * a / n);
}

double schechtman_l0(double n, double alpha) {
  SYNRAN_REQUIRE(alpha > 0.0 && alpha <= 1.0, "alpha outside (0,1]");
  return 2.0 * std::sqrt(n * std::log(1.0 / alpha));
}

double schechtman_expansion_bound(double n, double alpha, double l) {
  const double l0 = schechtman_l0(n, alpha);
  if (l < l0) return 0.0;
  const double d = l - l0;
  return 1.0 - std::exp(-d * d / (4.0 * n));
}

}  // namespace synran
